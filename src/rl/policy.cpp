#include "rl/policy.hpp"

#include <cmath>

#include "nn/gaussian.hpp"
#include "nn/serialize.hpp"
#include "util/contracts.hpp"

namespace vtm::rl {

namespace {

std::vector<std::size_t> trunk_sizes(const actor_critic_config& config) {
  VTM_EXPECTS(config.obs_dim >= 1);
  VTM_EXPECTS(config.act_dim >= 1);
  VTM_EXPECTS(!config.hidden.empty());
  std::vector<std::size_t> sizes;
  sizes.push_back(config.obs_dim);
  sizes.insert(sizes.end(), config.hidden.begin(), config.hidden.end());
  return sizes;
}

}  // namespace

actor_critic::actor_critic(const actor_critic_config& config, util::rng& gen)
    : config_(config),
      // Trunk includes the last hidden layer as its "output" with the hidden
      // activation applied manually in forward().
      trunk_([&] {
        auto sizes = trunk_sizes(config);
        return nn::mlp(sizes, config.hidden_activation, gen,
                       /*out_gain=*/std::sqrt(2.0));
      }()),
      mean_head_(config.hidden.back(), config.act_dim, gen,
                 config.policy_head_gain),
      value_head_(config.hidden.back(), 1, gen, config.value_head_gain),
      log_std_(nn::variable::parameter(
          nn::tensor({1, config.act_dim}, config.initial_log_std))) {}

actor_critic::forward_result actor_critic::forward(
    const nn::variable& observations) const {
  // The mlp's final affine layer gets no activation from mlp::forward, so
  // apply the hidden activation here: the trunk output is a hidden feature.
  nn::variable features = nn::apply_activation(trunk_.forward(observations),
                                               config_.hidden_activation);
  return {mean_head_.forward(features), value_head_.forward(features)};
}

actor_critic::value_forward_result actor_critic::forward_values(
    const nn::tensor& observations, nn::math_mode mode) const {
  nn::tensor features = trunk_.forward_values(observations, mode);
  nn::apply_activation_values(features, config_.hidden_activation, mode);
  return {mean_head_.forward_values(features),
          value_head_.forward_values(features)};
}

actor_critic::action_sample actor_critic::act(const nn::tensor& observation,
                                              util::rng& gen,
                                              nn::math_mode mode) const {
  VTM_EXPECTS(observation.dims() == (nn::shape{1, config_.obs_dim}));
  batch_action_sample batch = act_batch(observation, gen, mode);
  return {std::move(batch.actions), batch.log_probs[0], batch.values[0]};
}

actor_critic::batch_action_sample actor_critic::act_batch(
    const nn::tensor& observations, util::rng& gen, nn::math_mode mode) const {
  VTM_EXPECTS(observations.rows() >= 1);
  VTM_EXPECTS(observations.cols() == config_.obs_dim);
  const std::size_t batch = observations.rows();
  const value_forward_result out = forward_values(observations, mode);

  batch_action_sample sample;
  sample.actions = nn::gaussian_sample(out.mean, log_std_.value(), gen);
  const nn::tensor log_probs = nn::gaussian_log_prob_value(
      out.mean, log_std_.value(), sample.actions);
  sample.log_probs.resize(batch);
  sample.values.resize(batch);
  for (std::size_t r = 0; r < batch; ++r) {
    sample.log_probs[r] = log_probs(r, 0);
    sample.values[r] = out.value(r, 0);
  }
  return sample;
}

actor_critic::action_sample actor_critic::act_deterministic(
    const nn::tensor& observation) const {
  VTM_EXPECTS(observation.dims() == (nn::shape{1, config_.obs_dim}));
  const value_forward_result out = forward_values(observation);
  action_sample sample;
  sample.action = out.mean;
  sample.log_prob =
      nn::gaussian_log_prob_value(out.mean, log_std_.value(), sample.action)
          .item();
  sample.value = out.value.item();
  return sample;
}

double actor_critic::value(const nn::tensor& observation) const {
  VTM_EXPECTS(observation.dims() == (nn::shape{1, config_.obs_dim}));
  return forward_values(observation).value.item();
}

std::vector<double> actor_critic::values_batch(
    const nn::tensor& observations, nn::math_mode mode) const {
  VTM_EXPECTS(observations.rows() >= 1);
  VTM_EXPECTS(observations.cols() == config_.obs_dim);
  const nn::tensor values = forward_values(observations, mode).value;
  std::vector<double> out(observations.rows());
  for (std::size_t r = 0; r < out.size(); ++r) out[r] = values(r, 0);
  return out;
}

std::vector<nn::variable> actor_critic::parameters() const {
  std::vector<nn::variable> params = trunk_.parameters();
  for (const auto& p : mean_head_.parameters()) params.push_back(p);
  for (const auto& p : value_head_.parameters()) params.push_back(p);
  params.push_back(log_std_);
  return params;
}

std::string to_checkpoint(const actor_critic& policy) {
  return nn::save_parameters_string(policy.parameters());
}

void load_checkpoint(actor_critic& policy, const std::string& checkpoint) {
  auto params = policy.parameters();
  nn::load_parameters_string(checkpoint, params);
}

}  // namespace vtm::rl
