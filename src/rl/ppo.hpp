// Proximal Policy Optimization (clipped surrogate) per the paper's §IV-A5.
//
// Loss maximized: E[min(r·A, clip(r, 1±ε)·A)] − c·E[(V − V_targ)²] (+ optional
// entropy bonus). Updates run M epochs of random mini-batches sampled from the
// rollout buffer (Algorithm 1 lines 10–13), with Adam and gradient clipping.
#pragma once

#include <cstddef>

#include "nn/optim.hpp"
#include "rl/buffer.hpp"
#include "rl/policy.hpp"
#include "util/rng.hpp"

namespace vtm::rl {

/// PPO hyper-parameters (paper defaults where stated).
struct ppo_config {
  double learning_rate = 1e-5;   ///< Paper: lr = 0.00001.
  double gamma = 0.95;           ///< Reward discount γ.
  double gae_lambda = 0.95;      ///< GAE λ.
  double clip_epsilon = 0.2;     ///< Surrogate clip ε (eq. 19).
  double value_coef = 0.5;       ///< c, weight of the value-error term (eq. 14).
  double entropy_coef = 0.0;     ///< Optional exploration bonus.
  std::size_t minibatch_size = 20;  ///< |I| (paper: 20).
  std::size_t epochs = 10;          ///< M (paper: 10).
  double max_grad_norm = 0.5;    ///< Global gradient-norm clip.
  bool normalize_advantages = true;
  double log_std_min = -4.0;     ///< Clamp bounds keeping σ sane.
  double log_std_max = 1.0;
};

/// Diagnostics of one update() call, averaged over mini-batches.
struct ppo_update_stats {
  double policy_loss = 0.0;   ///< −L^CLIP (lower is better).
  double value_loss = 0.0;    ///< Mean squared value error.
  double entropy = 0.0;       ///< Policy entropy.
  double approx_kl = 0.0;     ///< E[old_logp − new_logp] estimate.
  double clip_fraction = 0.0; ///< Share of samples hitting the clip.
  std::size_t minibatches = 0;
};

/// The PPO learner bound to one actor-critic.
class ppo {
 public:
  /// Validates the configuration. The policy must outlive the learner.
  ppo(actor_critic& policy, const ppo_config& config, util::rng& gen);

  /// Run M epochs of mini-batch updates on a buffer whose advantages were
  /// computed by the caller (trainer). Requires buffer.advantages_ready().
  ppo_update_stats update(const rollout_buffer& buffer);

  [[nodiscard]] const ppo_config& config() const noexcept { return config_; }

  /// Total optimizer steps taken so far.
  [[nodiscard]] std::size_t steps() const noexcept { return optimizer_.steps(); }

 private:
  actor_critic& policy_;
  ppo_config config_;
  util::rng gen_;
  nn::adam optimizer_;
};

}  // namespace vtm::rl
