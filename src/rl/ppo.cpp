#include "rl/ppo.hpp"

#include <algorithm>
#include <cmath>

#include "nn/gaussian.hpp"
#include "util/contracts.hpp"

namespace vtm::rl {

ppo::ppo(actor_critic& policy, const ppo_config& config, util::rng& gen)
    : policy_(policy),
      config_(config),
      gen_(gen.split()),
      optimizer_(policy.parameters(), config.learning_rate) {
  VTM_EXPECTS(config.learning_rate > 0.0);
  VTM_EXPECTS(config.gamma >= 0.0 && config.gamma <= 1.0);
  VTM_EXPECTS(config.gae_lambda >= 0.0 && config.gae_lambda <= 1.0);
  VTM_EXPECTS(config.clip_epsilon > 0.0 && config.clip_epsilon < 1.0);
  VTM_EXPECTS(config.value_coef >= 0.0);
  VTM_EXPECTS(config.entropy_coef >= 0.0);
  VTM_EXPECTS(config.minibatch_size >= 1);
  VTM_EXPECTS(config.epochs >= 1);
  VTM_EXPECTS(config.max_grad_norm > 0.0);
  VTM_EXPECTS(config.log_std_min < config.log_std_max);
}

ppo_update_stats ppo::update(const rollout_buffer& buffer) {
  VTM_EXPECTS(buffer.advantages_ready());
  VTM_EXPECTS(buffer.size() >= 1);
  const std::size_t batch =
      std::min<std::size_t>(config_.minibatch_size, buffer.size());

  ppo_update_stats stats;
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    const minibatch mb =
        buffer.sample(batch, gen_, config_.normalize_advantages);

    const auto obs = nn::variable::constant(mb.observations);
    const auto actions = nn::variable::constant(mb.actions);
    const auto old_logp = nn::variable::constant(mb.old_log_probs);
    const auto advantages = nn::variable::constant(mb.advantages);
    const auto returns = nn::variable::constant(mb.returns);

    const auto out = policy_.forward(obs);
    const nn::variable new_logp =
        nn::gaussian_log_prob(out.mean, policy_.log_std(), actions);

    // Importance ratio with a numerically-safe clamp on the log difference.
    const nn::variable log_ratio = clamp(new_logp - old_logp, -20.0, 20.0);
    const nn::variable ratio = nn::exp(log_ratio);
    const nn::variable clipped_ratio =
        clamp(ratio, 1.0 - config_.clip_epsilon, 1.0 + config_.clip_epsilon);
    const nn::variable surrogate = nn::mean(
        nn::minimum(ratio * advantages, clipped_ratio * advantages));

    const nn::variable value_error = nn::mean(nn::square(out.value - returns));
    const nn::variable entropy = nn::gaussian_entropy(policy_.log_std());

    // Gradient *descent* on the negated objective (eq. 14 maximizes).
    nn::variable loss = -surrogate + config_.value_coef * value_error;
    if (config_.entropy_coef > 0.0)
      loss = loss - config_.entropy_coef * entropy;

    optimizer_.zero_grad();
    nn::backward(loss);
    nn::clip_grad_norm(policy_.parameters(), config_.max_grad_norm);
    optimizer_.step();

    // Keep σ in a sane band; PPO with tiny lr rarely hits this, but the
    // binary-reward regime can collapse σ without it.
    {
      nn::tensor ls = policy_.log_std().value();
      for (auto& x : ls.flat())
        x = std::clamp(x, config_.log_std_min, config_.log_std_max);
      nn::variable mutable_log_std = policy_.log_std();
      mutable_log_std.set_value(std::move(ls));
    }

    // Diagnostics.
    stats.policy_loss += -surrogate.value().item();
    stats.value_loss += value_error.value().item();
    stats.entropy += entropy.value().item();
    double kl = 0.0;
    double clipped = 0.0;
    const auto& rv = ratio.value();
    const auto& lr = log_ratio.value();
    for (std::size_t i = 0; i < rv.size(); ++i) {
      kl += -lr.flat()[i];
      const double r = rv.flat()[i];
      if (r < 1.0 - config_.clip_epsilon || r > 1.0 + config_.clip_epsilon)
        clipped += 1.0;
    }
    stats.approx_kl += kl / static_cast<double>(rv.size());
    stats.clip_fraction += clipped / static_cast<double>(rv.size());
    ++stats.minibatches;
  }

  const auto n = static_cast<double>(stats.minibatches);
  stats.policy_loss /= n;
  stats.value_loss /= n;
  stats.entropy /= n;
  stats.approx_kl /= n;
  stats.clip_fraction /= n;
  return stats;
}

}  // namespace vtm::rl
