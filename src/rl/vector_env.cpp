#include "rl/vector_env.hpp"

#include "util/contracts.hpp"

namespace vtm::rl {

vector_env::vector_env(const env_factory& factory, std::size_t count,
                       std::size_t threads) {
  VTM_EXPECTS(factory != nullptr);
  VTM_EXPECTS(count >= 1);
  envs_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto env = factory(i);
    VTM_EXPECTS(env != nullptr);
    envs_.push_back(std::move(env));
  }
  const auto& first = *envs_.front();
  for (const auto& env : envs_) {
    VTM_EXPECTS(env->observation_dim() == first.observation_dim());
    VTM_EXPECTS(env->action_dim() == first.action_dim());
    VTM_EXPECTS(env->action_low() == first.action_low());
    VTM_EXPECTS(env->action_high() == first.action_high());
  }
  action_rows_.assign(count, nn::tensor({1, first.action_dim()}));
  if (threads > 0) pool_ = std::make_unique<util::thread_pool>(threads);
}

std::size_t vector_env::observation_dim() const {
  return envs_.front()->observation_dim();
}

std::size_t vector_env::action_dim() const {
  return envs_.front()->action_dim();
}

double vector_env::action_low() const { return envs_.front()->action_low(); }

double vector_env::action_high() const { return envs_.front()->action_high(); }

environment& vector_env::env(std::size_t i) {
  VTM_EXPECTS(i < envs_.size());
  return *envs_[i];
}

const environment& vector_env::env(std::size_t i) const {
  VTM_EXPECTS(i < envs_.size());
  return *envs_[i];
}

nn::tensor vector_env::reset() {
  nn::tensor observations({size(), observation_dim()});
  for (std::size_t i = 0; i < size(); ++i)
    observations.set_row(i, envs_[i]->reset());
  return observations;
}

nn::tensor vector_env::reset_env(std::size_t i) {
  VTM_EXPECTS(i < envs_.size());
  nn::tensor observation = envs_[i]->reset();
  VTM_EXPECTS(observation.dims() == (nn::shape{1, observation_dim()}));
  return observation;
}

vector_step_result vector_env::step(const nn::tensor& actions) {
  const std::size_t batch = size();
  VTM_EXPECTS(actions.dims() == (nn::shape{batch, action_dim()}));

  vector_step_result result{nn::tensor({batch, observation_dim()}),
                            std::vector<double>(batch, 0.0),
                            std::vector<std::uint8_t>(batch, 0),
                            std::vector<std::unordered_map<std::string,
                                                          double>>(batch)};

  const auto step_one = [&](std::size_t i) {
    nn::tensor& action_row = action_rows_[i];
    for (std::size_t c = 0; c < actions.cols(); ++c)
      action_row(0, c) = actions(i, c);
    step_result one = envs_[i]->step(action_row);
    result.rewards[i] = one.reward;
    result.dones[i] = one.done ? 1 : 0;
    result.infos[i] = std::move(one.info);
    // Auto-reset: a finished episode hands back the next episode's initial
    // observation; the terminal observation is not observable through the
    // batched API (the trainer bootstraps done rows with 0).
    result.observations.set_row(i,
                                one.done ? envs_[i]->reset()
                                         : one.observation);
  };

  if (pool_) {
    pool_->parallel_for(batch, step_one);
  } else {
    for (std::size_t i = 0; i < batch; ++i) step_one(i);
  }
  return result;
}

}  // namespace vtm::rl
