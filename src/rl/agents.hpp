// Non-learning pricing agents — the paper's baseline schemes (§V-B).
//
// `random_scheme`: the MSP prices uniformly at random each round.
// `greedy_scheme`: the MSP "determines the best price by selecting from past
// game rounds" — replay the best-payoff price seen so far, with ε-uniform
// exploration to keep discovering prices.
#pragma once

#include <optional>
#include <string>

#include "rl/env.hpp"
#include "util/rng.hpp"

namespace vtm::rl {

/// Scalar-action agent interface for baseline schemes.
class pricing_agent {
 public:
  virtual ~pricing_agent() = default;

  /// Choose the next scalar action within [low, high].
  [[nodiscard]] virtual double select_action(double low, double high,
                                             util::rng& gen) = 0;

  /// Report the payoff obtained by the last action.
  virtual void feedback(double action, double payoff) = 0;

  /// Forget within-episode state (memory of past rounds).
  virtual void reset() = 0;

  /// Scheme name for reports.
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Uniform-random pricing.
class random_scheme final : public pricing_agent {
 public:
  [[nodiscard]] double select_action(double low, double high,
                                     util::rng& gen) override;
  void feedback(double, double) override {}
  void reset() override {}
  [[nodiscard]] std::string name() const override { return "random"; }
};

/// Best-of-past pricing with ε-uniform exploration.
class greedy_scheme final : public pricing_agent {
 public:
  /// Requires epsilon in [0, 1].
  explicit greedy_scheme(double epsilon = 0.1);

  [[nodiscard]] double select_action(double low, double high,
                                     util::rng& gen) override;
  void feedback(double action, double payoff) override;
  void reset() override;
  [[nodiscard]] std::string name() const override { return "greedy"; }

  /// Best (action, payoff) remembered so far, if any feedback arrived.
  [[nodiscard]] std::optional<double> best_action() const noexcept {
    return best_action_;
  }

 private:
  double epsilon_;
  std::optional<double> best_action_;
  double best_payoff_ = 0.0;
};

/// Outcome of running an agent for one episode.
struct agent_episode_stats {
  double episode_return = 0.0;   ///< Sum of environment rewards.
  double mean_utility = 0.0;     ///< Mean of info["leader_utility"].
  double best_utility = 0.0;     ///< Max of info["leader_utility"].
  double final_utility = 0.0;    ///< Utility of the last round.
  double mean_action = 0.0;
  double final_action = 0.0;
  std::size_t rounds = 0;
};

/// Drive `agent` through one episode of `env` (at most `max_rounds` steps or
/// until done). The payoff fed back is info["leader_utility"] when present,
/// otherwise the reward. Requires max_rounds >= 1.
[[nodiscard]] agent_episode_stats run_agent_episode(environment& env,
                                                    pricing_agent& agent,
                                                    std::size_t max_rounds,
                                                    util::rng& gen);

}  // namespace vtm::rl
