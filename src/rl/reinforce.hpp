// REINFORCE (Monte-Carlo policy gradient) with a learned value baseline.
//
// Algorithm-level ablation for the paper's PPO choice: same actor-critic
// network, but the policy gradient is the classic episodic estimator
// ∇ E[Σ γ^t R_t] = E[Σ ∇log π(a_t|o_t) · (G_t − V(o_t))], updated once per
// episode with no importance ratio, no clipping, and no sample reuse.
// Comparing it against PPO isolates what the clipped surrogate buys.
#pragma once

#include "nn/optim.hpp"
#include "rl/env.hpp"
#include "rl/policy.hpp"
#include "util/rng.hpp"

namespace vtm::rl {

/// REINFORCE hyper-parameters.
struct reinforce_config {
  double learning_rate = 1e-3;
  double gamma = 0.95;          ///< Return discount.
  double value_coef = 0.5;      ///< Baseline (value head) regression weight.
  double max_grad_norm = 0.5;
  bool use_baseline = true;     ///< Subtract V(o_t) from the return.
  bool normalize_returns = true;  ///< Standardize (G_t − b_t) per episode.
};

/// Per-episode training statistics.
struct reinforce_episode_stats {
  double episode_return = 0.0;   ///< Σ environment rewards.
  double mean_utility = 0.0;     ///< Mean info["leader_utility"].
  double final_utility = 0.0;
  double policy_loss = 0.0;
  double value_loss = 0.0;
};

/// Episodic Monte-Carlo policy-gradient learner over an actor_critic.
class reinforce {
 public:
  /// The policy must outlive the learner. Validates the configuration.
  reinforce(actor_critic& policy, const reinforce_config& config,
            util::rng& gen);

  /// Roll one episode (at most `max_rounds` steps) and apply one gradient
  /// update from it. Requires max_rounds >= 1.
  reinforce_episode_stats train_episode(environment& env,
                                        std::size_t max_rounds);

  [[nodiscard]] const reinforce_config& config() const noexcept {
    return config_;
  }

 private:
  actor_critic& policy_;
  reinforce_config config_;
  util::rng gen_;
  nn::adam optimizer_;
};

}  // namespace vtm::rl
