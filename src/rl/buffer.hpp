// Rollout storage with Generalized Advantage Estimation.
//
// The paper stores transitions in a replay buffer and samples random
// mini-batches for M epochs per update — i.e. standard PPO rollout reuse.
// This buffer stores one on-policy segment, computes GAE(γ, λ) advantages and
// discounted-return targets, and serves random mini-batches.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace vtm::rl {

/// One stored transition (flattened observation/action rows).
struct transition {
  std::vector<double> observation;
  std::vector<double> action;
  double reward = 0.0;
  double value = 0.0;      ///< Critic estimate V(o) at collection time.
  double log_prob = 0.0;   ///< Behaviour-policy log π(a|o).
  bool done = false;       ///< Episode ended at this step.
};

/// Mini-batch view materialized as tensors for the PPO loss graph.
struct minibatch {
  nn::tensor observations;   ///< B x obs_dim.
  nn::tensor actions;        ///< B x act_dim.
  nn::tensor old_log_probs;  ///< B x 1.
  nn::tensor advantages;     ///< B x 1 (normalized if requested).
  nn::tensor returns;        ///< B x 1 value targets.
};

/// Fixed-capacity rollout buffer.
class rollout_buffer {
 public:
  /// Requires capacity >= 1 and positive dims.
  rollout_buffer(std::size_t capacity, std::size_t obs_dim,
                 std::size_t act_dim);

  /// Append a transition; requires matching dims and size() < capacity().
  void add(const nn::tensor& observation, const nn::tensor& action,
           double reward, double value, double log_prob, bool done);

  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool full() const noexcept { return size() == capacity_; }

  /// Compute GAE advantages and return targets over the stored segment.
  /// `last_value` bootstraps the value beyond the final stored step (0 when
  /// the final step ended the episode). Requires non-empty buffer,
  /// gamma, lambda in [0, 1].
  void compute_advantages(double gamma, double lambda, double last_value);

  /// True once compute_advantages has run for the current contents.
  [[nodiscard]] bool advantages_ready() const noexcept { return ready_; }

  /// Materialize a mini-batch from explicit indices. Requires advantages_ready
  /// and valid indices. When `normalize` is set, advantages are standardized
  /// using the whole buffer's statistics (not the mini-batch's).
  [[nodiscard]] minibatch gather(std::span<const std::size_t> indices,
                                 bool normalize = true) const;

  /// Random mini-batch of `batch_size` distinct indices (batch_size <= size).
  [[nodiscard]] minibatch sample(std::size_t batch_size, util::rng& gen,
                                 bool normalize = true) const;

  /// Whole-buffer batch in storage order.
  [[nodiscard]] minibatch all(bool normalize = true) const;

  /// Advantage of the i-th stored transition. Requires advantages_ready.
  [[nodiscard]] double advantage_at(std::size_t i) const;

  /// Return target of the i-th stored transition. Requires advantages_ready.
  [[nodiscard]] double return_at(std::size_t i) const;

  /// Drop all stored transitions.
  void clear() noexcept;

 private:
  std::size_t capacity_;
  std::size_t obs_dim_;
  std::size_t act_dim_;
  std::vector<transition> data_;
  std::vector<double> advantages_;
  std::vector<double> returns_;
  double adv_mean_ = 0.0;
  double adv_std_ = 1.0;
  bool ready_ = false;
};

}  // namespace vtm::rl
