// Rollout storage with Generalized Advantage Estimation.
//
// The paper stores transitions in a replay buffer and samples random
// mini-batches for M epochs per update — i.e. standard PPO rollout reuse.
// This buffer stores one on-policy segment *per environment* (the batched
// rollout engine steps B environments in lockstep), computes GAE(γ, λ)
// advantages and discounted-return targets independently per environment
// segment, and serves random mini-batches over the flattened B·T transitions.
// With num_envs == 1 it behaves exactly like the original single-env buffer:
// storage order, advantage math, and mini-batch indexing are unchanged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace vtm::rl {

/// One stored transition (flattened observation/action rows).
struct transition {
  std::vector<double> observation;
  std::vector<double> action;
  double reward = 0.0;
  double value = 0.0;      ///< Critic estimate V(o) at collection time.
  double log_prob = 0.0;   ///< Behaviour-policy log π(a|o).
  bool done = false;       ///< Episode ended at this step.
};

/// Mini-batch view materialized as tensors for the PPO loss graph.
struct minibatch {
  nn::tensor observations;   ///< B x obs_dim.
  nn::tensor actions;        ///< B x act_dim.
  nn::tensor old_log_probs;  ///< B x 1.
  nn::tensor advantages;     ///< B x 1 (normalized if requested).
  nn::tensor returns;        ///< B x 1 value targets.
};

/// Fixed-capacity rollout buffer over num_envs parallel segments.
class rollout_buffer {
 public:
  /// Requires capacity (per environment) >= 1, positive dims, num_envs >= 1.
  rollout_buffer(std::size_t capacity, std::size_t obs_dim,
                 std::size_t act_dim, std::size_t num_envs = 1);

  /// Append a transition; requires num_envs() == 1, matching dims, and
  /// steps() < capacity().
  void add(const nn::tensor& observation, const nn::tensor& action,
           double reward, double value, double log_prob, bool done);

  /// Append one lockstep row for all environments: observations are
  /// num_envs x obs_dim, actions num_envs x act_dim, and the spans hold one
  /// entry per environment. Requires steps() < capacity().
  void add_batch(const nn::tensor& observations, const nn::tensor& actions,
                 std::span<const double> rewards,
                 std::span<const double> values,
                 std::span<const double> log_probs,
                 std::span<const std::uint8_t> dones);

  /// Environments stored per lockstep row.
  [[nodiscard]] std::size_t num_envs() const noexcept { return num_envs_; }

  /// Lockstep rows stored so far (same for every environment).
  [[nodiscard]] std::size_t steps() const noexcept { return steps_; }

  /// Total stored transitions: steps() · num_envs().
  [[nodiscard]] std::size_t size() const noexcept { return steps_ * num_envs_; }

  /// Per-environment segment capacity.
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool full() const noexcept { return steps_ == capacity_; }

  /// Compute GAE advantages and return targets per environment segment.
  /// `last_values` holds one bootstrap value per environment (0 where the
  /// final stored step ended the episode). Requires a non-empty buffer and
  /// gamma, lambda in [0, 1].
  void compute_advantages(double gamma, double lambda,
                          std::span<const double> last_values);

  /// Single-env convenience overload. Requires num_envs() == 1.
  void compute_advantages(double gamma, double lambda, double last_value);

  /// True once compute_advantages has run for the current contents.
  [[nodiscard]] bool advantages_ready() const noexcept { return ready_; }

  /// Materialize a mini-batch from explicit flat indices (environment-major:
  /// index = env · steps() + step). Requires advantages_ready and valid
  /// indices. When `normalize` is set, advantages are standardized using the
  /// whole buffer's statistics (not the mini-batch's).
  [[nodiscard]] minibatch gather(std::span<const std::size_t> indices,
                                 bool normalize = true) const;

  /// Random mini-batch of `batch_size` distinct indices (batch_size <= size).
  [[nodiscard]] minibatch sample(std::size_t batch_size, util::rng& gen,
                                 bool normalize = true) const;

  /// Whole-buffer batch in storage order.
  [[nodiscard]] minibatch all(bool normalize = true) const;

  /// Advantage of flat transition i (environment-major order). Requires
  /// advantages_ready.
  [[nodiscard]] double advantage_at(std::size_t i) const;

  /// Return target of flat transition i. Requires advantages_ready.
  [[nodiscard]] double return_at(std::size_t i) const;

  /// Drop all stored transitions.
  void clear() noexcept;

 private:
  [[nodiscard]] const transition& at_flat(std::size_t i) const;

  std::size_t capacity_;
  std::size_t obs_dim_;
  std::size_t act_dim_;
  std::size_t num_envs_;
  std::size_t steps_ = 0;
  std::vector<std::vector<transition>> segments_;  ///< One per environment.
  std::vector<double> advantages_;  ///< Flat, environment-major.
  std::vector<double> returns_;     ///< Flat, environment-major.
  double adv_mean_ = 0.0;
  double adv_std_ = 1.0;
  bool ready_ = false;
};

}  // namespace vtm::rl
