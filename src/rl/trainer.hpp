// Training driver implementing the paper's Algorithm 1.
//
// For each of E episodes: reset the environment and the buffer; for each of
// K rounds, act with the current policy, store the transition, and every |I|
// steps run a PPO update (M epochs of random mini-batches). Per-episode
// statistics feed the convergence figures (Fig. 2).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "rl/env.hpp"
#include "rl/policy.hpp"
#include "rl/ppo.hpp"
#include "util/rng.hpp"

namespace vtm::rl {

/// Episode/round budget (paper: E=500, K=100, update every |I|=20 rounds).
struct trainer_config {
  std::size_t episodes = 500;            ///< E.
  std::size_t rounds_per_episode = 100;  ///< K.
  std::size_t update_interval = 20;      ///< Run PPO when k % |I| == 0.
  std::uint64_t seed = 42;               ///< Action-sampling seed.
};

/// Per-episode training record.
struct episode_stats {
  std::size_t episode = 0;
  double episode_return = 0.0;  ///< Σ rewards — Fig. 2(a)'s y-axis.
  double mean_utility = 0.0;    ///< Mean leader utility over the episode.
  double best_utility = 0.0;    ///< Best leader utility in the episode.
  double final_utility = 0.0;   ///< Utility of round K — Fig. 2(b)'s y-axis.
  double mean_action = 0.0;
  double final_action = 0.0;
  double policy_entropy = 0.0;  ///< From the last PPO update of the episode.
  double value_loss = 0.0;
};

/// Orchestrates environment, policy, and learner.
class trainer {
 public:
  /// All references must outlive the trainer. Validates the configuration.
  trainer(environment& env, actor_critic& policy, ppo& learner,
          const trainer_config& config);

  /// Optional per-episode callback (progress logging).
  using episode_callback = std::function<void(const episode_stats&)>;

  /// Run the full E-episode schedule; returns one record per episode.
  [[nodiscard]] std::vector<episode_stats> train(
      const episode_callback& on_episode = {});

  /// Run a single episode with learning enabled.
  [[nodiscard]] episode_stats run_episode(std::size_t episode_index);

  /// Run one greedy (mean-action) episode without learning.
  [[nodiscard]] episode_stats evaluate();

 private:
  environment& env_;
  actor_critic& policy_;
  ppo& learner_;
  trainer_config config_;
  util::rng gen_;
};

}  // namespace vtm::rl
