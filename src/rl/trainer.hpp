// Training drivers implementing the paper's Algorithm 1.
//
// `vector_trainer` is the batched rollout engine: it steps B environments in
// lockstep through a vector_env, samples all B actions with one network
// forward, stores lockstep rows in a batch-aware rollout_buffer (per-env GAE
// segments), and runs a PPO update every |I| lockstep steps or at an episode
// boundary. With B = 1 the control flow — action-RNG consumption, buffer
// contents, update cadence, bootstrap values — reproduces the legacy
// single-env `trainer` bitwise: same seeds give identical episode_stats.
//
// `trainer` is kept as the thin single-env path (one episode at a time, E
// episodes of K rounds, update every |I| steps). Per-episode statistics feed
// the convergence figures (Fig. 2).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "rl/env.hpp"
#include "rl/policy.hpp"
#include "rl/ppo.hpp"
#include "rl/vector_env.hpp"
#include "util/rng.hpp"

namespace vtm::rl {

/// Episode/round budget (paper: E=500, K=100, update every |I|=20 rounds).
struct trainer_config {
  std::size_t episodes = 500;            ///< E.
  std::size_t rounds_per_episode = 100;  ///< K.
  std::size_t update_interval = 20;      ///< Run PPO when k % |I| == 0.
  std::uint64_t seed = 42;               ///< Action-sampling seed.
  /// Collect rollouts with nn::math_mode::fast activations (sampling and
  /// GAE bootstraps only — PPO's update graph always uses exact math). Off
  /// by default, keeping rollout sampling bitwise-consistent with the
  /// training graph; both trainers honour the flag identically, so B=1
  /// trainer/vector_trainer equivalence holds in either mode.
  bool fast_rollout = false;
};

/// Per-episode training record.
struct episode_stats {
  std::size_t episode = 0;
  double episode_return = 0.0;  ///< Σ rewards — Fig. 2(a)'s y-axis.
  double mean_utility = 0.0;    ///< Mean leader utility over the episode.
  double best_utility = 0.0;    ///< Best leader utility in the episode.
  double final_utility = 0.0;   ///< Utility of round K — Fig. 2(b)'s y-axis.
  double mean_action = 0.0;
  double final_action = 0.0;
  double policy_entropy = 0.0;  ///< From the last PPO update of the episode.
  double value_loss = 0.0;
};

/// Orchestrates environment, policy, and learner.
class trainer {
 public:
  /// All references must outlive the trainer. Validates the configuration.
  trainer(environment& env, actor_critic& policy, ppo& learner,
          const trainer_config& config);

  /// Optional per-episode callback (progress logging).
  using episode_callback = std::function<void(const episode_stats&)>;

  /// Run the full E-episode schedule; returns one record per episode.
  [[nodiscard]] std::vector<episode_stats> train(
      const episode_callback& on_episode = {});

  /// Run a single episode with learning enabled.
  [[nodiscard]] episode_stats run_episode(std::size_t episode_index);

  /// Run one greedy (mean-action) episode without learning.
  [[nodiscard]] episode_stats evaluate();

 private:
  environment& env_;
  actor_critic& policy_;
  ppo& learner_;
  trainer_config config_;
  util::rng gen_;
};

/// Batched rollout engine over a vector_env.
///
/// `config.episodes` counts episodes *completed across all environments*;
/// episodes finish either when an environment reports done (auto-reset) or
/// when it reaches `rounds_per_episode` (trainer-driven truncation, the value
/// function bootstraps the cut). Stats are emitted in completion order, ties
/// broken by environment index.
class vector_trainer {
 public:
  /// All references must outlive the trainer. Validates the configuration.
  vector_trainer(vector_env& envs, actor_critic& policy, ppo& learner,
                 const trainer_config& config);

  /// Run until `episodes` episodes have completed; returns one record each.
  [[nodiscard]] std::vector<episode_stats> train(
      const trainer::episode_callback& on_episode = {});

  /// Run one greedy (mean-action) episode on environment 0 without learning.
  [[nodiscard]] episode_stats evaluate();

 private:
  vector_env& envs_;
  actor_critic& policy_;
  ppo& learner_;
  trainer_config config_;
  util::rng gen_;
};

}  // namespace vtm::rl
