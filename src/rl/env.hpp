// Environment abstraction for episodic POMDP control.
//
// Observations and actions are row tensors (1 x dim). `step_result::info`
// carries domain diagnostics (e.g. the MSP's raw utility) that agents other
// than the learner — greedy baselines, loggers — may consume.
#pragma once

#include <string>
#include <unordered_map>

#include "nn/tensor.hpp"

namespace vtm::rl {

/// Outcome of one environment step.
struct step_result {
  nn::tensor observation;  ///< Next observation, 1 x observation_dim.
  double reward = 0.0;     ///< Scalar learning signal.
  bool done = false;       ///< Episode terminated after this step.
  std::unordered_map<std::string, double> info;  ///< Domain diagnostics.
};

/// Episodic environment interface (I.25).
class environment {
 public:
  virtual ~environment() = default;

  /// Dimension of the observation row vector.
  [[nodiscard]] virtual std::size_t observation_dim() const = 0;

  /// Dimension of the action row vector.
  [[nodiscard]] virtual std::size_t action_dim() const = 0;

  /// Inclusive lower bound of every action component.
  [[nodiscard]] virtual double action_low() const = 0;

  /// Inclusive upper bound of every action component.
  [[nodiscard]] virtual double action_high() const = 0;

  /// Start a new episode; returns the initial observation (1 x obs_dim).
  virtual nn::tensor reset() = 0;

  /// Apply an action (1 x act_dim; implementations clamp to the box).
  virtual step_result step(const nn::tensor& action) = 0;
};

}  // namespace vtm::rl
