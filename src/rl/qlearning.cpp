#include "rl/qlearning.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/contracts.hpp"

namespace vtm::rl {

q_pricing_scheme::q_pricing_scheme(const q_pricing_config& config)
    : config_(config), epsilon_(config.epsilon_start) {
  VTM_EXPECTS(config.bins >= 2);
  VTM_EXPECTS(config.epsilon_start >= 0.0 && config.epsilon_start <= 1.0);
  VTM_EXPECTS(config.epsilon_end >= 0.0 &&
              config.epsilon_end <= config.epsilon_start);
  VTM_EXPECTS(config.epsilon_decay > 0.0 && config.epsilon_decay <= 1.0);
  VTM_EXPECTS(config.step_size > 0.0 && config.step_size <= 1.0);
  reset();
}

void q_pricing_scheme::reset() {
  const double init = config_.optimistic_init
                          ? std::numeric_limits<double>::max() / 4.0
                          : 0.0;
  q_.assign(config_.bins, init);
  visits_.assign(config_.bins, 0);
  epsilon_ = config_.epsilon_start;
}

std::size_t q_pricing_scheme::bin_of(double action) const {
  const double span = high_ - low_;
  if (span <= 0.0) return 0;
  const double frac = (action - low_) / span;
  const auto bin = static_cast<std::size_t>(
      frac * static_cast<double>(config_.bins));
  return std::min(bin, config_.bins - 1);
}

double q_pricing_scheme::action_of(std::size_t bin) const {
  // Bin centre.
  const double width = (high_ - low_) / static_cast<double>(config_.bins);
  return low_ + (static_cast<double>(bin) + 0.5) * width;
}

double q_pricing_scheme::select_action(double low, double high,
                                       util::rng& gen) {
  VTM_EXPECTS(low < high);
  low_ = low;
  high_ = high;
  if (gen.bernoulli(std::max(epsilon_, config_.epsilon_end))) {
    last_bin_ = static_cast<std::size_t>(
        gen.uniform_int(0, static_cast<std::int64_t>(config_.bins) - 1));
  } else {
    last_bin_ = greedy_bin();
  }
  return action_of(last_bin_);
}

void q_pricing_scheme::feedback(double action, double payoff) {
  const std::size_t bin = bin_of(action);
  if (visits_[bin] == 0 && config_.optimistic_init) {
    q_[bin] = payoff;  // first observation replaces the optimistic prior
  } else {
    q_[bin] += config_.step_size * (payoff - q_[bin]);
  }
  ++visits_[bin];
  epsilon_ = std::max(config_.epsilon_end, epsilon_ * config_.epsilon_decay);
}

double q_pricing_scheme::q_value(std::size_t bin) const {
  VTM_EXPECTS(bin < config_.bins);
  return q_[bin];
}

std::size_t q_pricing_scheme::greedy_bin() const {
  std::size_t best = 0;
  for (std::size_t b = 1; b < config_.bins; ++b)
    if (q_[b] > q_[best]) best = b;
  return best;
}

std::size_t q_pricing_scheme::visits(std::size_t bin) const {
  VTM_EXPECTS(bin < config_.bins);
  return visits_[bin];
}

}  // namespace vtm::rl
