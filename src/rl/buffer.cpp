#include "rl/buffer.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"
#include "util/stats.hpp"

namespace vtm::rl {

rollout_buffer::rollout_buffer(std::size_t capacity, std::size_t obs_dim,
                               std::size_t act_dim, std::size_t num_envs)
    : capacity_(capacity),
      obs_dim_(obs_dim),
      act_dim_(act_dim),
      num_envs_(num_envs) {
  VTM_EXPECTS(capacity >= 1);
  VTM_EXPECTS(obs_dim >= 1);
  VTM_EXPECTS(act_dim >= 1);
  VTM_EXPECTS(num_envs >= 1);
  segments_.resize(num_envs);
  for (auto& segment : segments_) segment.reserve(capacity);
}

void rollout_buffer::add(const nn::tensor& observation,
                         const nn::tensor& action, double reward, double value,
                         double log_prob, bool done) {
  VTM_EXPECTS(num_envs_ == 1);
  const double rewards[] = {reward};
  const double values[] = {value};
  const double log_probs[] = {log_prob};
  const std::uint8_t dones[] = {done ? std::uint8_t{1} : std::uint8_t{0}};
  add_batch(observation, action, rewards, values, log_probs, dones);
}

void rollout_buffer::add_batch(const nn::tensor& observations,
                               const nn::tensor& actions,
                               std::span<const double> rewards,
                               std::span<const double> values,
                               std::span<const double> log_probs,
                               std::span<const std::uint8_t> dones) {
  VTM_EXPECTS(steps_ < capacity_);
  VTM_EXPECTS(observations.dims() == (nn::shape{num_envs_, obs_dim_}));
  VTM_EXPECTS(actions.dims() == (nn::shape{num_envs_, act_dim_}));
  VTM_EXPECTS(rewards.size() == num_envs_);
  VTM_EXPECTS(values.size() == num_envs_);
  VTM_EXPECTS(log_probs.size() == num_envs_);
  VTM_EXPECTS(dones.size() == num_envs_);
  for (std::size_t e = 0; e < num_envs_; ++e) {
    transition t;
    t.observation.resize(obs_dim_);
    for (std::size_t c = 0; c < obs_dim_; ++c)
      t.observation[c] = observations(e, c);
    t.action.resize(act_dim_);
    for (std::size_t c = 0; c < act_dim_; ++c) t.action[c] = actions(e, c);
    t.reward = rewards[e];
    t.value = values[e];
    t.log_prob = log_probs[e];
    t.done = dones[e] != 0;
    segments_[e].push_back(std::move(t));
  }
  ++steps_;
  ready_ = false;
}

void rollout_buffer::compute_advantages(double gamma, double lambda,
                                        std::span<const double> last_values) {
  VTM_EXPECTS(steps_ >= 1);
  VTM_EXPECTS(last_values.size() == num_envs_);
  VTM_EXPECTS(gamma >= 0.0 && gamma <= 1.0);
  VTM_EXPECTS(lambda >= 0.0 && lambda <= 1.0);
  advantages_.assign(size(), 0.0);
  returns_.assign(size(), 0.0);

  for (std::size_t e = 0; e < num_envs_; ++e) {
    const auto& segment = segments_[e];
    const std::size_t base = e * steps_;
    double gae = 0.0;
    double next_value = last_values[e];
    for (std::size_t idx = steps_; idx-- > 0;) {
      const transition& t = segment[idx];
      const double not_done = t.done ? 0.0 : 1.0;
      const double delta = t.reward + gamma * next_value * not_done - t.value;
      gae = delta + gamma * lambda * not_done * gae;
      advantages_[base + idx] = gae;
      returns_[base + idx] = gae + t.value;  // λ-return target for the critic
      next_value = t.value;
    }
  }

  util::running_stats acc;
  for (double a : advantages_) acc.push(a);
  adv_mean_ = acc.mean();
  adv_std_ = acc.count() > 1 ? acc.stddev() : 0.0;
  ready_ = true;
}

void rollout_buffer::compute_advantages(double gamma, double lambda,
                                        double last_value) {
  VTM_EXPECTS(num_envs_ == 1);
  const double last_values[] = {last_value};
  compute_advantages(gamma, lambda, std::span<const double>(last_values));
}

const transition& rollout_buffer::at_flat(std::size_t i) const {
  return segments_[i / steps_][i % steps_];
}

minibatch rollout_buffer::gather(std::span<const std::size_t> indices,
                                 bool normalize) const {
  VTM_EXPECTS(ready_);
  VTM_EXPECTS(!indices.empty());
  const std::size_t b = indices.size();
  minibatch batch{
      nn::tensor({b, obs_dim_}), nn::tensor({b, act_dim_}),
      nn::tensor({b, 1}),        nn::tensor({b, 1}),
      nn::tensor({b, 1}),
  };
  const double denom = adv_std_ > 1e-8 ? adv_std_ : 1.0;
  for (std::size_t r = 0; r < b; ++r) {
    const std::size_t i = indices[r];
    VTM_EXPECTS(i < size());
    const transition& t = at_flat(i);
    for (std::size_t c = 0; c < obs_dim_; ++c)
      batch.observations(r, c) = t.observation[c];
    for (std::size_t c = 0; c < act_dim_; ++c)
      batch.actions(r, c) = t.action[c];
    batch.old_log_probs(r, 0) = t.log_prob;
    batch.advantages(r, 0) =
        normalize ? (advantages_[i] - adv_mean_) / denom : advantages_[i];
    batch.returns(r, 0) = returns_[i];
  }
  return batch;
}

minibatch rollout_buffer::sample(std::size_t batch_size, util::rng& gen,
                                 bool normalize) const {
  VTM_EXPECTS(batch_size >= 1);
  VTM_EXPECTS(batch_size <= size());
  auto perm = gen.permutation(size());
  perm.resize(batch_size);
  return gather(perm, normalize);
}

minibatch rollout_buffer::all(bool normalize) const {
  std::vector<std::size_t> indices(size());
  for (std::size_t i = 0; i < size(); ++i) indices[i] = i;
  return gather(indices, normalize);
}

double rollout_buffer::advantage_at(std::size_t i) const {
  VTM_EXPECTS(ready_);
  VTM_EXPECTS(i < advantages_.size());
  return advantages_[i];
}

double rollout_buffer::return_at(std::size_t i) const {
  VTM_EXPECTS(ready_);
  VTM_EXPECTS(i < returns_.size());
  return returns_[i];
}

void rollout_buffer::clear() noexcept {
  for (auto& segment : segments_) segment.clear();
  steps_ = 0;
  advantages_.clear();
  returns_.clear();
  ready_ = false;
}

}  // namespace vtm::rl
