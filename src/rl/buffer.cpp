#include "rl/buffer.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"
#include "util/stats.hpp"

namespace vtm::rl {

rollout_buffer::rollout_buffer(std::size_t capacity, std::size_t obs_dim,
                               std::size_t act_dim)
    : capacity_(capacity), obs_dim_(obs_dim), act_dim_(act_dim) {
  VTM_EXPECTS(capacity >= 1);
  VTM_EXPECTS(obs_dim >= 1);
  VTM_EXPECTS(act_dim >= 1);
  data_.reserve(capacity);
}

void rollout_buffer::add(const nn::tensor& observation,
                         const nn::tensor& action, double reward, double value,
                         double log_prob, bool done) {
  VTM_EXPECTS(size() < capacity_);
  VTM_EXPECTS(observation.dims() == (nn::shape{1, obs_dim_}));
  VTM_EXPECTS(action.dims() == (nn::shape{1, act_dim_}));
  transition t;
  t.observation.assign(observation.flat().begin(), observation.flat().end());
  t.action.assign(action.flat().begin(), action.flat().end());
  t.reward = reward;
  t.value = value;
  t.log_prob = log_prob;
  t.done = done;
  data_.push_back(std::move(t));
  ready_ = false;
}

void rollout_buffer::compute_advantages(double gamma, double lambda,
                                        double last_value) {
  VTM_EXPECTS(!data_.empty());
  VTM_EXPECTS(gamma >= 0.0 && gamma <= 1.0);
  VTM_EXPECTS(lambda >= 0.0 && lambda <= 1.0);
  const std::size_t n = data_.size();
  advantages_.assign(n, 0.0);
  returns_.assign(n, 0.0);

  double gae = 0.0;
  double next_value = last_value;
  for (std::size_t idx = n; idx-- > 0;) {
    const transition& t = data_[idx];
    const double not_done = t.done ? 0.0 : 1.0;
    const double delta = t.reward + gamma * next_value * not_done - t.value;
    gae = delta + gamma * lambda * not_done * gae;
    advantages_[idx] = gae;
    returns_[idx] = gae + t.value;  // λ-return target for the critic
    next_value = t.value;
  }

  util::running_stats acc;
  for (double a : advantages_) acc.push(a);
  adv_mean_ = acc.mean();
  adv_std_ = acc.count() > 1 ? acc.stddev() : 0.0;
  ready_ = true;
}

minibatch rollout_buffer::gather(std::span<const std::size_t> indices,
                                 bool normalize) const {
  VTM_EXPECTS(ready_);
  VTM_EXPECTS(!indices.empty());
  const std::size_t b = indices.size();
  minibatch batch{
      nn::tensor({b, obs_dim_}), nn::tensor({b, act_dim_}),
      nn::tensor({b, 1}),        nn::tensor({b, 1}),
      nn::tensor({b, 1}),
  };
  const double denom = adv_std_ > 1e-8 ? adv_std_ : 1.0;
  for (std::size_t r = 0; r < b; ++r) {
    const std::size_t i = indices[r];
    VTM_EXPECTS(i < data_.size());
    const transition& t = data_[i];
    for (std::size_t c = 0; c < obs_dim_; ++c)
      batch.observations(r, c) = t.observation[c];
    for (std::size_t c = 0; c < act_dim_; ++c)
      batch.actions(r, c) = t.action[c];
    batch.old_log_probs(r, 0) = t.log_prob;
    batch.advantages(r, 0) =
        normalize ? (advantages_[i] - adv_mean_) / denom : advantages_[i];
    batch.returns(r, 0) = returns_[i];
  }
  return batch;
}

minibatch rollout_buffer::sample(std::size_t batch_size, util::rng& gen,
                                 bool normalize) const {
  VTM_EXPECTS(batch_size >= 1);
  VTM_EXPECTS(batch_size <= size());
  auto perm = gen.permutation(size());
  perm.resize(batch_size);
  return gather(perm, normalize);
}

minibatch rollout_buffer::all(bool normalize) const {
  std::vector<std::size_t> indices(size());
  for (std::size_t i = 0; i < size(); ++i) indices[i] = i;
  return gather(indices, normalize);
}

double rollout_buffer::advantage_at(std::size_t i) const {
  VTM_EXPECTS(ready_);
  VTM_EXPECTS(i < advantages_.size());
  return advantages_[i];
}

double rollout_buffer::return_at(std::size_t i) const {
  VTM_EXPECTS(ready_);
  VTM_EXPECTS(i < returns_.size());
  return returns_[i];
}

void rollout_buffer::clear() noexcept {
  data_.clear();
  advantages_.clear();
  returns_.clear();
  ready_ = false;
}

}  // namespace vtm::rl
