// Stateless Q-learning over a discretized price grid (a learning baseline
// between the paper's "greedy" scheme and full DRL).
//
// The MSP's pricing problem against myopic best-responding followers is a
// stationary continuum bandit; a tabular agent that discretizes [low, high]
// into bins and runs ε-greedy value estimation is the classic non-deep
// solution. Comparing it against PPO quantifies what (if anything) the
// neural policy buys on this problem — and its bin-resolution limit shows
// where tabularization breaks.
#pragma once

#include <cstddef>
#include <vector>

#include "rl/agents.hpp"
#include "util/rng.hpp"

namespace vtm::rl {

/// Hyper-parameters of the tabular pricing learner.
struct q_pricing_config {
  std::size_t bins = 32;          ///< Price-grid resolution (>= 2).
  double epsilon_start = 1.0;     ///< Initial exploration rate.
  double epsilon_end = 0.05;      ///< Floor exploration rate.
  double epsilon_decay = 0.995;   ///< Multiplicative decay per feedback.
  double step_size = 0.1;         ///< Q-value learning rate in (0, 1].
  bool optimistic_init = true;    ///< Start Q at +inf-ish to force coverage.
};

/// ε-greedy tabular value learner implementing the pricing_agent interface.
class q_pricing_scheme final : public pricing_agent {
 public:
  explicit q_pricing_scheme(const q_pricing_config& config = {});

  [[nodiscard]] double select_action(double low, double high,
                                     util::rng& gen) override;
  void feedback(double action, double payoff) override;
  void reset() override;
  [[nodiscard]] std::string name() const override { return "q-grid"; }

  /// Current exploration rate.
  [[nodiscard]] double epsilon() const noexcept { return epsilon_; }

  /// Q estimate of a bin (for tests). Requires bin < bins.
  [[nodiscard]] double q_value(std::size_t bin) const;

  /// Bin index of the current greedy action.
  [[nodiscard]] std::size_t greedy_bin() const;

  /// Number of feedback updates folded per bin. Requires bin < bins.
  [[nodiscard]] std::size_t visits(std::size_t bin) const;

 private:
  [[nodiscard]] std::size_t bin_of(double action) const;
  [[nodiscard]] double action_of(std::size_t bin) const;

  q_pricing_config config_;
  std::vector<double> q_;
  std::vector<std::size_t> visits_;
  double epsilon_;
  double low_ = 0.0;
  double high_ = 1.0;
  std::size_t last_bin_ = 0;
};

}  // namespace vtm::rl
