// Shared-parameter actor-critic network.
//
// Matching the paper (§IV-A5: "the policy and the value function share the
// same parameter θ"), one MLP trunk feeds two linear heads: the action mean
// and the state value. A global learnable log-std parameterizes exploration.
#pragma once

#include <string>
#include <vector>

#include "nn/autograd.hpp"
#include "nn/layers.hpp"
#include "util/rng.hpp"

namespace vtm::rl {

/// Architecture and initialization of the actor-critic.
struct actor_critic_config {
  std::size_t obs_dim = 1;                 ///< Observation width.
  std::size_t act_dim = 1;                 ///< Action width.
  std::vector<std::size_t> hidden{64, 64}; ///< Trunk layer sizes (paper: 2x64).
  nn::activation hidden_activation = nn::activation::tanh;
  double initial_log_std = -0.5;           ///< Starting exploration scale.
  double policy_head_gain = 0.01;          ///< Small init keeps early actions centered.
  double value_head_gain = 1.0;
};

/// Policy π(a|o) = N(mean(o), exp(log_std)²) plus value head V(o).
class actor_critic {
 public:
  /// Build with the given architecture; weights drawn from `gen`.
  actor_critic(const actor_critic_config& config, util::rng& gen);

  /// Graph-building forward pass over a batch of observations.
  struct forward_result {
    nn::variable mean;   ///< batch x act_dim.
    nn::variable value;  ///< batch x 1.
  };
  [[nodiscard]] forward_result forward(const nn::variable& observations) const;

  /// Graph-free forward for rollout collection: one batched matmul chain,
  /// no autograd nodes. With math_mode::exact the outputs are
  /// bitwise-identical to forward(); math_mode::fast substitutes nn/fastmath
  /// activations (sampling-only precision — PPO's update graph stays exact).
  struct value_forward_result {
    nn::tensor mean;   ///< batch x act_dim.
    nn::tensor value;  ///< batch x 1.
  };
  [[nodiscard]] value_forward_result forward_values(
      const nn::tensor& observations,
      nn::math_mode mode = nn::math_mode::exact) const;

  /// Sampled action for one observation (no gradients).
  struct action_sample {
    nn::tensor action;    ///< 1 x act_dim, pre-clipping.
    double log_prob = 0;  ///< Behaviour log-density of `action`.
    double value = 0;     ///< Critic estimate V(o).
  };
  [[nodiscard]] action_sample act(
      const nn::tensor& observation, util::rng& gen,
      nn::math_mode mode = nn::math_mode::exact) const;

  /// Sampled actions for a whole observation batch in one forward pass (no
  /// gradients). Row i of `actions` is drawn for row i of the input; RNG
  /// consumption order matches B successive act() calls, so a B=1 batch is
  /// bitwise-identical to act().
  struct batch_action_sample {
    nn::tensor actions;             ///< B x act_dim, pre-clipping.
    std::vector<double> log_probs;  ///< Behaviour log-densities, one per row.
    std::vector<double> values;     ///< Critic estimates, one per row.
  };
  [[nodiscard]] batch_action_sample act_batch(
      const nn::tensor& observations, util::rng& gen,
      nn::math_mode mode = nn::math_mode::exact) const;

  /// Deterministic (mean) action for evaluation.
  [[nodiscard]] action_sample act_deterministic(
      const nn::tensor& observation) const;

  /// Critic value for one observation (no gradients).
  [[nodiscard]] double value(const nn::tensor& observation) const;

  /// Critic values for a whole observation batch in one forward pass.
  [[nodiscard]] std::vector<double> values_batch(
      const nn::tensor& observations,
      nn::math_mode mode = nn::math_mode::exact) const;

  /// All trainable parameters (trunk, heads, log_std).
  [[nodiscard]] std::vector<nn::variable> parameters() const;

  /// The 1 x act_dim log standard deviation parameter.
  [[nodiscard]] const nn::variable& log_std() const noexcept {
    return log_std_;
  }

  [[nodiscard]] const actor_critic_config& config() const noexcept {
    return config_;
  }

 private:
  actor_critic_config config_;
  nn::mlp trunk_;
  nn::linear mean_head_;
  nn::linear value_head_;
  nn::variable log_std_;
};

/// Serialize a policy's parameters to a text checkpoint (nn::serialize
/// format). Round-trips exactly: load_checkpoint(to_checkpoint(p)) restores
/// the same forward pass bit for bit.
[[nodiscard]] std::string to_checkpoint(const actor_critic& policy);

/// Load a checkpoint produced by to_checkpoint into an identically-shaped
/// policy. Throws std::runtime_error on malformed input or an architecture
/// (parameter shape) mismatch.
void load_checkpoint(actor_critic& policy, const std::string& checkpoint);

}  // namespace vtm::rl
