// Fast elementwise math for the rollout inference hot path.
//
// Rollout collection only *samples* from the policy — gradients, and
// therefore exact transcendentals, are not needed. `fast_tanh` is a 7/6
// Padé approximant (Lambert continued fraction truncated at the x⁷ term)
// with hard saturation; absolute error is < 1e-4 everywhere (worst at the
// clamp point) and < 1e-6 for |x| <= 3, far below the policy's exploration
// noise. PPO's training graph (nn/autograd.cpp) always uses std::tanh, so
// learning math is untouched; only opt-in fast-mode rollouts
// (trainer_config::fast_rollout) see the approximation.
#pragma once

#include "nn/tensor.hpp"

namespace vtm::nn {

/// Padé(7,6) tanh approximation with saturation. ~5x faster than std::tanh
/// on glibc and auto-vectorizable (no branches in the polynomial).
[[nodiscard]] inline double fast_tanh(double x) noexcept {
  // Beyond |x| = 4.97 the true tanh is within 1e-4 of ±1 and the rational
  // approximation starts to diverge, so clamp first.
  const double c = x > 4.97 ? 4.97 : (x < -4.97 ? -4.97 : x);
  const double x2 = c * c;
  const double p = c * (135135.0 + x2 * (17325.0 + x2 * (378.0 + x2)));
  const double q = 135135.0 + x2 * (62370.0 + x2 * (3150.0 + x2 * 28.0));
  return p / q;
}

/// Apply fast_tanh to every element in place.
void fast_tanh_inplace(tensor& t) noexcept;

}  // namespace vtm::nn
