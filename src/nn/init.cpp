#include "nn/init.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace vtm::nn {

tensor xavier_uniform(shape s, util::rng& gen) {
  VTM_EXPECTS(s.rows > 0 && s.cols > 0);
  const double bound =
      std::sqrt(6.0 / static_cast<double>(s.rows + s.cols));
  tensor out(s);
  for (auto& x : out.flat()) x = gen.uniform(-bound, bound);
  return out;
}

tensor orthogonal(shape s, util::rng& gen, double gain) {
  VTM_EXPECTS(s.rows > 0 && s.cols > 0);
  // Orthonormalize min(rows, cols) Gaussian vectors of length max(rows, cols)
  // via modified Gram–Schmidt: tall matrices get orthonormal columns, wide
  // matrices orthonormal rows (so WᵀW or WWᵀ is gain²·I respectively).
  const std::size_t n = std::min(s.rows, s.cols);  // number of vectors
  const std::size_t d = std::max(s.rows, s.cols);  // vector length (n <= d)
  std::vector<std::vector<double>> basis(n, std::vector<double>(d));
  for (auto& v : basis)
    for (auto& x : v) x = gen.normal();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      double dot = 0.0;
      for (std::size_t k = 0; k < d; ++k) dot += basis[i][k] * basis[j][k];
      for (std::size_t k = 0; k < d; ++k) basis[i][k] -= dot * basis[j][k];
    }
    double norm = 0.0;
    for (double x : basis[i]) norm += x * x;
    norm = std::sqrt(norm);
    if (norm < 1e-12) {  // degenerate draw: re-seed this vector
      for (auto& x : basis[i]) x = gen.normal();
      norm = 0.0;
      for (double x : basis[i]) norm += x * x;
      norm = std::sqrt(norm);
    }
    for (auto& x : basis[i]) x /= norm;
  }
  tensor out(s);
  const bool tall = s.rows >= s.cols;  // vectors become columns when tall
  for (std::size_t r = 0; r < s.rows; ++r)
    for (std::size_t c = 0; c < s.cols; ++c)
      out(r, c) = gain * (tall ? basis[c][r] : basis[r][c]);
  return out;
}

tensor zeros(shape s) { return tensor(s); }

}  // namespace vtm::nn
