// Neural-network building blocks on top of the autograd tape.
//
// A layer owns `variable::parameter` leaves and exposes forward() that builds
// graph nodes. `parameters()` hands the trainable leaves to an optimizer.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/autograd.hpp"
#include "util/rng.hpp"

namespace vtm::nn {

/// Activation functions selectable per layer.
enum class activation { identity, tanh, relu, sigmoid };

/// Apply an activation as a graph op.
[[nodiscard]] variable apply_activation(const variable& x, activation act);

/// Transcendental precision of graph-free inference forwards.
/// `exact` reproduces the autograd ops bit for bit (std::tanh et al.);
/// `fast` substitutes nn/fastmath approximations on the rollout hot path.
enum class math_mode { exact, fast };

/// Apply an activation in place on a plain tensor (no graph).
void apply_activation_values(tensor& x, activation act,
                             math_mode mode = math_mode::exact);

/// Affine layer y = x·W + b with W: in x out, b: 1 x out.
class linear {
 public:
  /// Initialize with orthogonal weights (given gain) and zero bias.
  linear(std::size_t in, std::size_t out, util::rng& gen, double gain = 1.0);

  /// Forward pass; x is batch x in, result is batch x out.
  [[nodiscard]] variable forward(const variable& x) const;

  /// Graph-free forward on plain tensors. Bitwise-identical to
  /// forward(...).value() (same matmul and bias-add order) without building
  /// autograd nodes — the rollout inference hot path.
  [[nodiscard]] tensor forward_values(const tensor& x) const;

  /// Trainable leaves: {W, b}.
  [[nodiscard]] std::vector<variable> parameters() const;

  [[nodiscard]] std::size_t in_features() const noexcept { return in_; }
  [[nodiscard]] std::size_t out_features() const noexcept { return out_; }

  /// Direct access for serialization.
  [[nodiscard]] const variable& weight() const noexcept { return weight_; }
  [[nodiscard]] const variable& bias() const noexcept { return bias_; }

 private:
  std::size_t in_;
  std::size_t out_;
  variable weight_;
  variable bias_;
};

/// Multi-layer perceptron: hidden layers with a shared activation plus an
/// identity-activated output layer (the PPO heads apply their own transforms).
class mlp {
 public:
  /// `sizes` = {in, h1, ..., out}; requires at least in and out.
  /// `hidden_act` applies to all but the last affine layer. `out_gain`
  /// scales the output layer's orthogonal init (PPO uses small policy gains).
  mlp(const std::vector<std::size_t>& sizes, activation hidden_act,
      util::rng& gen, double out_gain = 1.0);

  /// Forward pass; x is batch x in.
  [[nodiscard]] variable forward(const variable& x) const;

  /// Graph-free forward on plain tensors; `mode` selects the activation
  /// precision (exact is bitwise-identical to forward(...).value()).
  [[nodiscard]] tensor forward_values(const tensor& x,
                                      math_mode mode = math_mode::exact) const;

  /// All trainable leaves, layer by layer.
  [[nodiscard]] std::vector<variable> parameters() const;

  /// Number of affine layers.
  [[nodiscard]] std::size_t depth() const noexcept { return layers_.size(); }

  /// Access to an individual affine layer.
  [[nodiscard]] const linear& layer(std::size_t i) const;

 private:
  std::vector<linear> layers_;
  activation hidden_act_;
};

/// Total number of scalar parameters across a parameter list.
[[nodiscard]] std::size_t parameter_count(const std::vector<variable>& params);

}  // namespace vtm::nn
