// Text serialization of parameter lists (checkpointing trained policies).
//
// Format (line-oriented, locale-independent):
//   vtm-params v1
//   <count>
//   <rows> <cols> <v0> <v1> ... per parameter, full precision
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "nn/autograd.hpp"

namespace vtm::nn {

/// Write each parameter's shape and values to `out`.
void save_parameters(std::ostream& out, const std::vector<variable>& params);

/// Read values back into existing parameters; shapes must match pairwise.
/// Throws std::runtime_error on malformed input or shape mismatch.
void load_parameters(std::istream& in, std::vector<variable>& params);

/// String-blob convenience wrappers for checkpoint round-trips (the blob is
/// the same text format, so files and strings interchange freely).
[[nodiscard]] std::string save_parameters_string(
    const std::vector<variable>& params);
void load_parameters_string(const std::string& blob,
                            std::vector<variable>& params);

}  // namespace vtm::nn
