#include "nn/tensor.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace vtm::nn {

std::string to_string(shape s) {
  return std::to_string(s.rows) + "x" + std::to_string(s.cols);
}

tensor::tensor(shape s) : shape_(s), data_(s.size(), 0.0) {}

tensor::tensor(shape s, double fill) : shape_(s), data_(s.size(), fill) {}

tensor::tensor(shape s, std::vector<double> data)
    : shape_(s), data_(std::move(data)) {
  VTM_EXPECTS(data_.size() == shape_.size());
}

tensor tensor::row(std::span<const double> values) {
  return tensor({1, values.size()},
                std::vector<double>(values.begin(), values.end()));
}

tensor tensor::column(std::span<const double> values) {
  return tensor({values.size(), 1},
                std::vector<double>(values.begin(), values.end()));
}

tensor tensor::scalar(double value) { return tensor({1, 1}, {value}); }

double& tensor::at(std::size_t r, std::size_t c) {
  VTM_EXPECTS(r < rows() && c < cols());
  return (*this)(r, c);
}

double tensor::at(std::size_t r, std::size_t c) const {
  VTM_EXPECTS(r < rows() && c < cols());
  return (*this)(r, c);
}

double tensor::item() const {
  VTM_EXPECTS(size() == 1);
  return data_[0];
}

void tensor::fill(double value) noexcept {
  std::fill(data_.begin(), data_.end(), value);
}

void tensor::apply(const std::function<double(double)>& fn) {
  for (auto& x : data_) x = fn(x);
}

tensor tensor::matmul(const tensor& rhs) const {
  VTM_EXPECTS(cols() == rhs.rows());
  tensor out({rows(), rhs.cols()});
  // ikj loop order (streams through rhs rows, cache-friendly for row-major)
  // with a 4-way unroll over k: raw restrict pointers and the unrolled
  // accumulation let the compiler keep the j loop in vector registers. This
  // is the hottest loop in the library — every policy forward (rollout and
  // PPO update alike) lands here.
  const std::size_t n = rows();
  const std::size_t inner = cols();
  const std::size_t m = rhs.cols();
  const std::size_t inner4 = inner & ~std::size_t{3};
  const double* __restrict lhs_data = data_.data();
  const double* __restrict rhs_data = rhs.data_.data();
  double* __restrict out_data = out.data_.data();
  for (std::size_t i = 0; i < n; ++i) {
    double* __restrict out_row = out_data + i * m;
    const double* __restrict lhs_row = lhs_data + i * inner;
    for (std::size_t k = 0; k < inner4; k += 4) {
      const double a0 = lhs_row[k];
      const double a1 = lhs_row[k + 1];
      const double a2 = lhs_row[k + 2];
      const double a3 = lhs_row[k + 3];
      const double* __restrict b0 = rhs_data + k * m;
      const double* __restrict b1 = b0 + m;
      const double* __restrict b2 = b1 + m;
      const double* __restrict b3 = b2 + m;
      for (std::size_t j = 0; j < m; ++j)
        out_row[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
    }
    for (std::size_t k = inner4; k < inner; ++k) {
      const double a = lhs_row[k];
      const double* __restrict rhs_row = rhs_data + k * m;
      for (std::size_t j = 0; j < m; ++j) out_row[j] += a * rhs_row[j];
    }
  }
  return out;
}

tensor tensor::transposed() const {
  tensor out({cols(), rows()});
  for (std::size_t i = 0; i < rows(); ++i)
    for (std::size_t j = 0; j < cols(); ++j) out(j, i) = (*this)(i, j);
  return out;
}

tensor tensor::operator+(const tensor& rhs) const {
  VTM_EXPECTS(dims() == rhs.dims());
  tensor out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

tensor tensor::operator-(const tensor& rhs) const {
  VTM_EXPECTS(dims() == rhs.dims());
  tensor out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

tensor tensor::hadamard(const tensor& rhs) const {
  VTM_EXPECTS(dims() == rhs.dims());
  tensor out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] *= rhs.data_[i];
  return out;
}

tensor tensor::operator*(double s) const {
  tensor out = *this;
  for (auto& x : out.data_) x *= s;
  return out;
}

tensor tensor::operator+(double s) const {
  tensor out = *this;
  for (auto& x : out.data_) x += s;
  return out;
}

tensor& tensor::operator+=(const tensor& rhs) {
  VTM_EXPECTS(dims() == rhs.dims());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

double tensor::sum() const noexcept {
  double acc = 0.0;
  for (double x : data_) acc += x;
  return acc;
}

double tensor::max_abs() const noexcept {
  double acc = 0.0;
  for (double x : data_) acc = std::max(acc, std::abs(x));
  return acc;
}

tensor tensor::row_at(std::size_t r) const {
  VTM_EXPECTS(r < rows());
  tensor out({1, cols()});
  for (std::size_t j = 0; j < cols(); ++j) out(0, j) = (*this)(r, j);
  return out;
}

void tensor::set_row(std::size_t r, const tensor& row) {
  VTM_EXPECTS(r < rows());
  VTM_EXPECTS(row.dims() == (shape{1, cols()}));
  for (std::size_t j = 0; j < cols(); ++j) (*this)(r, j) = row(0, j);
}

bool tensor::allclose(const tensor& rhs, double tol) const {
  if (dims() != rhs.dims()) return false;
  for (std::size_t i = 0; i < data_.size(); ++i)
    if (std::abs(data_[i] - rhs.data_[i]) > tol) return false;
  return true;
}

}  // namespace vtm::nn
