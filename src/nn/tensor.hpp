// Dense row-major 2-D tensor of doubles.
//
// This is the numeric value type underneath the autograd tape (autograd.hpp).
// RL workloads here are small MLPs (batch x features), so a 2-D tensor with
// explicit shapes — a row vector is 1 x n — keeps the API honest and the
// bugs shallow. All shape mismatches are contract violations, not UB.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <vector>

namespace vtm::nn {

/// Shape of a 2-D tensor: rows x cols.
struct shape {
  std::size_t rows = 0;
  std::size_t cols = 0;

  [[nodiscard]] std::size_t size() const noexcept { return rows * cols; }
  [[nodiscard]] bool operator==(const shape&) const noexcept = default;
};

/// Render a shape as "RxC" for diagnostics.
[[nodiscard]] std::string to_string(shape s);

/// Dense row-major matrix of doubles with value semantics.
class tensor {
 public:
  /// Empty 0x0 tensor.
  tensor() noexcept = default;

  /// Zero-initialized tensor of the given shape.
  explicit tensor(shape s);

  /// Tensor of the given shape filled with `fill`.
  tensor(shape s, double fill);

  /// Tensor of the given shape taking ownership of `data` (row-major).
  /// Requires data.size() == s.size().
  tensor(shape s, std::vector<double> data);

  /// 1 x n row vector from values.
  [[nodiscard]] static tensor row(std::span<const double> values);

  /// n x 1 column vector from values.
  [[nodiscard]] static tensor column(std::span<const double> values);

  /// Scalar 1 x 1 tensor.
  [[nodiscard]] static tensor scalar(double value);

  [[nodiscard]] shape dims() const noexcept { return shape_; }
  [[nodiscard]] std::size_t rows() const noexcept { return shape_.rows; }
  [[nodiscard]] std::size_t cols() const noexcept { return shape_.cols; }
  [[nodiscard]] std::size_t size() const noexcept { return shape_.size(); }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  /// Element access with bounds contracts.
  [[nodiscard]] double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  /// Unchecked element access (hot paths).
  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * shape_.cols + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * shape_.cols + c];
  }

  /// Value of a 1 x 1 tensor. Requires size() == 1.
  [[nodiscard]] double item() const;

  /// Flat row-major view of the data.
  [[nodiscard]] std::span<const double> flat() const noexcept { return data_; }
  [[nodiscard]] std::span<double> flat() noexcept { return data_; }

  /// Set every element to `value`.
  void fill(double value) noexcept;

  /// Apply `fn` elementwise in place.
  void apply(const std::function<double(double)>& fn);

  /// Matrix product; requires cols() == rhs.rows().
  [[nodiscard]] tensor matmul(const tensor& rhs) const;

  /// Transpose.
  [[nodiscard]] tensor transposed() const;

  /// Elementwise arithmetic; all require matching shapes.
  [[nodiscard]] tensor operator+(const tensor& rhs) const;
  [[nodiscard]] tensor operator-(const tensor& rhs) const;
  [[nodiscard]] tensor hadamard(const tensor& rhs) const;

  /// Scalar arithmetic.
  [[nodiscard]] tensor operator*(double s) const;
  [[nodiscard]] tensor operator+(double s) const;

  /// In-place accumulate; requires matching shapes.
  tensor& operator+=(const tensor& rhs);

  /// Sum of all elements.
  [[nodiscard]] double sum() const noexcept;

  /// Largest absolute element; 0 for empty tensors.
  [[nodiscard]] double max_abs() const noexcept;

  /// Extract row r as a 1 x cols tensor.
  [[nodiscard]] tensor row_at(std::size_t r) const;

  /// Overwrite row r from a 1 x cols row tensor. Requires matching width.
  void set_row(std::size_t r, const tensor& row);

  /// True when shapes match and elements differ by at most `tol`.
  [[nodiscard]] bool allclose(const tensor& rhs, double tol = 1e-9) const;

 private:
  shape shape_{};
  std::vector<double> data_;
};

}  // namespace vtm::nn
