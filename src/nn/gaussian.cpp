#include "nn/gaussian.hpp"

#include <cmath>
#include <numbers>

#include "util/contracts.hpp"

namespace vtm::nn {

namespace {
constexpr double half_log_two_pi() {
  return 0.5 * 1.8378770664093453;  // ln(2π)
}
}  // namespace

variable gaussian_log_prob(const variable& mean, const variable& log_std,
                           const variable& actions) {
  VTM_EXPECTS(mean.dims() == actions.dims());
  VTM_EXPECTS(log_std.dims().rows == 1);
  VTM_EXPECTS(log_std.dims().cols == mean.dims().cols);
  const std::size_t batch = mean.dims().rows;

  const variable log_std_b = tile_rows(log_std, batch);
  const variable std_b = exp(log_std_b);
  const variable z = (actions - mean) / std_b;
  const variable elem =
      square(z) * -0.5 - log_std_b - half_log_two_pi();
  return sum_cols(elem);
}

variable gaussian_entropy(const variable& log_std) {
  VTM_EXPECTS(log_std.dims().rows == 1);
  const auto d = static_cast<double>(log_std.dims().cols);
  return sum(log_std) + d * (0.5 + half_log_two_pi());
}

tensor gaussian_sample(const tensor& mean, const tensor& log_std,
                       util::rng& gen) {
  VTM_EXPECTS(log_std.rows() == 1);
  VTM_EXPECTS(log_std.cols() == mean.cols());
  tensor out = mean;
  for (std::size_t r = 0; r < out.rows(); ++r)
    for (std::size_t c = 0; c < out.cols(); ++c)
      out(r, c) += std::exp(log_std(0, c)) * gen.normal();
  return out;
}

tensor gaussian_log_prob_value(const tensor& mean, const tensor& log_std,
                               const tensor& actions) {
  VTM_EXPECTS(mean.dims() == actions.dims());
  VTM_EXPECTS(log_std.rows() == 1);
  VTM_EXPECTS(log_std.cols() == mean.cols());
  tensor out({mean.rows(), 1});
  for (std::size_t r = 0; r < mean.rows(); ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < mean.cols(); ++c) {
      const double ls = log_std(0, c);
      const double z = (actions(r, c) - mean(r, c)) / std::exp(ls);
      acc += -0.5 * z * z - ls - half_log_two_pi();
    }
    out(r, 0) = acc;
  }
  return out;
}

}  // namespace vtm::nn
