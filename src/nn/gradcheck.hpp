// Finite-difference validation of autograd gradients.
//
// Used by the test suite to certify every op and every composite loss: the
// analytic gradient from backward() must match a central-difference estimate
// obtained by re-running the forward closure with perturbed parameters.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "nn/autograd.hpp"

namespace vtm::nn {

/// Outcome of a finite-difference gradient comparison.
struct gradcheck_result {
  bool passed = false;      ///< All elements within tolerance.
  double max_abs_err = 0.0; ///< Largest |analytic − numeric|.
  double max_rel_err = 0.0; ///< Largest relative error (guarded denominator).
  std::string detail;       ///< Human-readable location of the worst element.
};

/// Compare autograd gradients of `build_scalar()` against central differences.
///
/// `build_scalar` must construct a fresh 1x1 graph from the *current* values
/// of `params` each time it is called (it is invoked 2·|θ|+1 times).
/// `eps` is the perturbation; `tol` bounds the allowed absolute error for
/// elements whose magnitude is small, otherwise relative error applies.
[[nodiscard]] gradcheck_result check_gradients(
    const std::function<variable()>& build_scalar,
    const std::vector<variable>& params, double eps = 1e-6, double tol = 1e-5);

}  // namespace vtm::nn
