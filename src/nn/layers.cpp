#include "nn/layers.hpp"

#include <cmath>

#include "nn/fastmath.hpp"
#include "nn/init.hpp"
#include "util/contracts.hpp"

namespace vtm::nn {

variable apply_activation(const variable& x, activation act) {
  switch (act) {
    case activation::identity:
      return x;
    case activation::tanh:
      return tanh(x);
    case activation::relu:
      return relu(x);
    case activation::sigmoid:
      return sigmoid(x);
  }
  VTM_ASSERT(false);
}

void apply_activation_values(tensor& x, activation act, math_mode mode) {
  switch (act) {
    case activation::identity:
      return;
    case activation::tanh:
      if (mode == math_mode::fast) {
        fast_tanh_inplace(x);
      } else {
        for (double& v : x.flat()) v = std::tanh(v);
      }
      return;
    case activation::relu:
      for (double& v : x.flat()) v = v > 0.0 ? v : 0.0;
      return;
    case activation::sigmoid:
      for (double& v : x.flat()) v = 1.0 / (1.0 + std::exp(-v));
      return;
  }
  VTM_ASSERT(false);
}

linear::linear(std::size_t in, std::size_t out, util::rng& gen, double gain)
    : in_(in),
      out_(out),
      weight_(variable::parameter(orthogonal({in, out}, gen, gain))),
      bias_(variable::parameter(zeros({1, out}))) {
  VTM_EXPECTS(in > 0 && out > 0);
}

variable linear::forward(const variable& x) const {
  VTM_EXPECTS(x.dims().cols == in_);
  return add_rowvec(matmul(x, weight_), bias_);
}

tensor linear::forward_values(const tensor& x) const {
  VTM_EXPECTS(x.cols() == in_);
  tensor out = x.matmul(weight_.value());
  const tensor& b = bias_.value();
  for (std::size_t r = 0; r < out.rows(); ++r)
    for (std::size_t c = 0; c < out.cols(); ++c) out(r, c) += b(0, c);
  return out;
}

std::vector<variable> linear::parameters() const { return {weight_, bias_}; }

mlp::mlp(const std::vector<std::size_t>& sizes, activation hidden_act,
         util::rng& gen, double out_gain)
    : hidden_act_(hidden_act) {
  VTM_EXPECTS(sizes.size() >= 2);
  for (std::size_t i = 0; i + 1 < sizes.size(); ++i) {
    const bool is_output = (i + 2 == sizes.size());
    // sqrt(2) gain for hidden layers (relu/tanh convention), custom for head.
    const double gain = is_output ? out_gain : std::sqrt(2.0);
    layers_.emplace_back(sizes[i], sizes[i + 1], gen, gain);
  }
}

variable mlp::forward(const variable& x) const {
  variable h = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].forward(h);
    if (i + 1 < layers_.size()) h = apply_activation(h, hidden_act_);
  }
  return h;
}

tensor mlp::forward_values(const tensor& x, math_mode mode) const {
  tensor h = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].forward_values(h);
    if (i + 1 < layers_.size()) apply_activation_values(h, hidden_act_, mode);
  }
  return h;
}

std::vector<variable> mlp::parameters() const {
  std::vector<variable> params;
  for (const auto& layer : layers_) {
    auto p = layer.parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  return params;
}

const linear& mlp::layer(std::size_t i) const {
  VTM_EXPECTS(i < layers_.size());
  return layers_[i];
}

std::size_t parameter_count(const std::vector<variable>& params) {
  std::size_t n = 0;
  for (const auto& p : params) n += p.value().size();
  return n;
}

}  // namespace vtm::nn
