// Reverse-mode automatic differentiation on a dynamic tape.
//
// A `variable` is a value-semantics handle to a node in a dynamically-built
// computation graph over `tensor`s. Building expressions records the graph;
// `backward(root)` on a scalar root accumulates d(root)/d(node) into every
// node's `grad()`. Leaves created with `variable::parameter` are trainable;
// leaves created with `variable::constant` are inputs/targets.
//
// The op set is exactly what PPO with a diagonal-Gaussian policy and a shared
// actor-critic trunk needs (matmul, bias broadcast, tanh/relu, exp/log,
// elementwise arithmetic, clamp, minimum, reductions). Every op's gradient is
// validated against finite differences in tests (see gradcheck.hpp).
#pragma once

#include <memory>
#include <vector>

#include "nn/tensor.hpp"

namespace vtm::nn {

namespace detail {
struct node;
}  // namespace detail

/// Handle to a node of the autograd tape.
class variable {
 public:
  /// Empty handle; most operations require a non-empty one.
  variable() noexcept = default;

  /// Non-trainable leaf (input data, targets, fixed coefficients).
  [[nodiscard]] static variable constant(tensor value);

  /// Trainable leaf: participates in backward and optimizer steps.
  [[nodiscard]] static variable parameter(tensor value);

  /// True when the handle points at a node.
  [[nodiscard]] bool valid() const noexcept { return node_ != nullptr; }

  /// Forward value. Requires valid().
  [[nodiscard]] const tensor& value() const;

  /// Accumulated gradient (same shape as value). Requires valid(); zero
  /// before the first backward() that touches this node.
  [[nodiscard]] const tensor& grad() const;

  /// Shape of value().
  [[nodiscard]] shape dims() const;

  /// Whether gradients flow into this node.
  [[nodiscard]] bool requires_grad() const;

  /// Overwrite the value of a leaf in place (optimizer step). Requires the
  /// same shape and that this node is a leaf.
  void set_value(tensor value);

  /// Reset this node's gradient to zero.
  void zero_grad();

  /// Add `delta` into this node's gradient (used by gradient clipping and by
  /// tests). Requires the same shape as value().
  void accumulate_grad(const tensor& delta);

  /// Identity used for hashing/visited sets.
  [[nodiscard]] const void* id() const noexcept { return node_.get(); }

 private:
  explicit variable(std::shared_ptr<detail::node> n) : node_(std::move(n)) {}
  std::shared_ptr<detail::node> node_;

  friend struct graph_ops;
};

/// Run reverse-mode differentiation from a scalar root (shape 1x1).
/// Gradients accumulate into grad() of every reachable node; call zero_grad()
/// on parameters between backward passes (optimizers do this for you).
void backward(const variable& root);

// ---- graph-building operations ------------------------------------------

/// Elementwise sum; shapes must match.
[[nodiscard]] variable operator+(const variable& a, const variable& b);
/// Elementwise difference; shapes must match.
[[nodiscard]] variable operator-(const variable& a, const variable& b);
/// Elementwise (Hadamard) product; shapes must match.
[[nodiscard]] variable operator*(const variable& a, const variable& b);
/// Elementwise quotient; shapes must match; denominator must be nonzero.
[[nodiscard]] variable operator/(const variable& a, const variable& b);

/// Scale by a constant.
[[nodiscard]] variable operator*(const variable& a, double s);
[[nodiscard]] variable operator*(double s, const variable& a);
/// Shift by a constant.
[[nodiscard]] variable operator+(const variable& a, double s);
[[nodiscard]] variable operator-(const variable& a, double s);
/// Negation.
[[nodiscard]] variable operator-(const variable& a);

/// Matrix product: (m x k) · (k x n) -> (m x n).
[[nodiscard]] variable matmul(const variable& a, const variable& b);

/// Broadcast-add a 1 x d row vector to every row of an m x d matrix.
[[nodiscard]] variable add_rowvec(const variable& m, const variable& row);

/// Tile a 1 x d row vector into n identical rows (gradient: column sums).
[[nodiscard]] variable tile_rows(const variable& row, std::size_t n);

/// Hyperbolic tangent, elementwise.
[[nodiscard]] variable tanh(const variable& a);
/// Rectified linear unit, elementwise.
[[nodiscard]] variable relu(const variable& a);
/// Logistic sigmoid, elementwise.
[[nodiscard]] variable sigmoid(const variable& a);
/// Natural exponential, elementwise.
[[nodiscard]] variable exp(const variable& a);
/// Natural logarithm, elementwise; requires strictly positive values.
[[nodiscard]] variable log(const variable& a);
/// Elementwise square.
[[nodiscard]] variable square(const variable& a);

/// Clamp into [lo, hi]; gradient is 1 inside the interval, 0 outside.
[[nodiscard]] variable clamp(const variable& a, double lo, double hi);

/// Elementwise minimum; subgradient follows the smaller operand (ties -> a).
[[nodiscard]] variable minimum(const variable& a, const variable& b);

/// Sum of all elements -> 1 x 1.
[[nodiscard]] variable sum(const variable& a);
/// Mean of all elements -> 1 x 1.
[[nodiscard]] variable mean(const variable& a);
/// Per-row sum over columns: m x d -> m x 1.
[[nodiscard]] variable sum_cols(const variable& a);

/// Block the gradient: value passes through, backward stops here.
[[nodiscard]] variable stop_gradient(const variable& a);

}  // namespace vtm::nn
