#include "nn/serialize.hpp"

#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "util/contracts.hpp"

namespace vtm::nn {

namespace {
constexpr const char* magic = "vtm-params";
constexpr const char* version = "v1";
}  // namespace

void save_parameters(std::ostream& out, const std::vector<variable>& params) {
  out.precision(std::numeric_limits<double>::max_digits10);
  out << magic << ' ' << version << '\n' << params.size() << '\n';
  for (const auto& p : params) {
    VTM_EXPECTS(p.valid());
    const tensor& t = p.value();
    out << t.rows() << ' ' << t.cols();
    for (double x : t.flat()) out << ' ' << x;
    out << '\n';
  }
}

void load_parameters(std::istream& in, std::vector<variable>& params) {
  std::string word, ver;
  in >> word >> ver;
  if (!in || word != magic || ver != version)
    throw std::runtime_error("load_parameters: bad header");
  std::size_t count = 0;
  in >> count;
  if (!in || count != params.size())
    throw std::runtime_error("load_parameters: parameter count mismatch");
  for (auto& p : params) {
    std::size_t rows = 0, cols = 0;
    in >> rows >> cols;
    if (!in || shape{rows, cols} != p.dims())
      throw std::runtime_error("load_parameters: shape mismatch");
    tensor t({rows, cols});
    for (auto& x : t.flat()) {
      in >> x;
      if (!in) throw std::runtime_error("load_parameters: truncated values");
    }
    p.set_value(std::move(t));
  }
}

std::string save_parameters_string(const std::vector<variable>& params) {
  std::ostringstream out;
  save_parameters(out, params);
  return out.str();
}

void load_parameters_string(const std::string& blob,
                            std::vector<variable>& params) {
  std::istringstream in(blob);
  load_parameters(in, params);
}

}  // namespace vtm::nn
