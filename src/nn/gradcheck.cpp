#include "nn/gradcheck.hpp"

#include <cmath>
#include <sstream>

#include "util/contracts.hpp"

namespace vtm::nn {

gradcheck_result check_gradients(
    const std::function<variable()>& build_scalar,
    const std::vector<variable>& params, double eps, double tol) {
  VTM_EXPECTS(eps > 0.0);
  VTM_EXPECTS(tol > 0.0);

  // Analytic pass.
  for (const auto& p : params) {
    variable mutable_p = p;
    mutable_p.zero_grad();
  }
  variable root = build_scalar();
  backward(root);
  std::vector<tensor> analytic;
  analytic.reserve(params.size());
  for (const auto& p : params) analytic.push_back(p.grad());

  gradcheck_result result;
  result.passed = true;

  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    variable param = params[pi];
    const tensor original = param.value();
    for (std::size_t j = 0; j < original.size(); ++j) {
      tensor plus = original;
      plus.flat()[j] += eps;
      param.set_value(plus);
      const double f_plus = build_scalar().value().item();

      tensor minus = original;
      minus.flat()[j] -= eps;
      param.set_value(minus);
      const double f_minus = build_scalar().value().item();

      param.set_value(original);

      const double numeric = (f_plus - f_minus) / (2.0 * eps);
      const double exact = analytic[pi].flat()[j];
      const double abs_err = std::abs(numeric - exact);
      const double denom = std::max({std::abs(numeric), std::abs(exact), 1.0});
      const double rel_err = abs_err / denom;

      if (abs_err > result.max_abs_err) {
        result.max_abs_err = abs_err;
        std::ostringstream detail;
        detail << "param " << pi << " element " << j << ": analytic=" << exact
               << " numeric=" << numeric;
        result.detail = detail.str();
      }
      result.max_rel_err = std::max(result.max_rel_err, rel_err);
      if (rel_err > tol) result.passed = false;
    }
  }
  return result;
}

}  // namespace vtm::nn
