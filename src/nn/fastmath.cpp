#include "nn/fastmath.hpp"

namespace vtm::nn {

void fast_tanh_inplace(tensor& t) noexcept {
  for (double& x : t.flat()) x = fast_tanh(x);
}

}  // namespace vtm::nn
