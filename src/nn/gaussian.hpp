// Diagonal Gaussian action distribution for continuous-control policies.
//
// The policy outputs a per-sample mean (batch x d); a global `log_std`
// parameter (1 x d) controls exploration. Log-probabilities and entropy are
// built as autograd expressions so PPO's surrogate differentiates through
// them; sampling is a plain tensor operation (no gradient flows through the
// reparameterization in PPO).
#pragma once

#include "nn/autograd.hpp"
#include "util/rng.hpp"

namespace vtm::nn {

/// Per-sample log N(a | mean, diag(exp(log_std))²): batch x 1.
///
/// `mean` is batch x d, `log_std` is 1 x d (tiled internally), `actions` is a
/// batch x d constant.
[[nodiscard]] variable gaussian_log_prob(const variable& mean,
                                         const variable& log_std,
                                         const variable& actions);

/// Differential entropy of the diagonal Gaussian, summed over dimensions:
/// Σ_d (0.5·(1 + ln 2π) + log_std_d), a 1 x 1 expression.
[[nodiscard]] variable gaussian_entropy(const variable& log_std);

/// Draw one action per row of `mean` using exp(log_std) as stddev.
[[nodiscard]] tensor gaussian_sample(const tensor& mean, const tensor& log_std,
                                     util::rng& gen);

/// Log-density evaluated on plain tensors (no graph); batch x 1.
[[nodiscard]] tensor gaussian_log_prob_value(const tensor& mean,
                                             const tensor& log_std,
                                             const tensor& actions);

}  // namespace vtm::nn
