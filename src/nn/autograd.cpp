#include "nn/autograd.hpp"

#include <cmath>
#include <functional>
#include <unordered_set>
#include <utility>

#include "util/contracts.hpp"

namespace vtm::nn {

namespace detail {

struct node {
  tensor value;
  tensor grad;
  bool requires_grad = false;
  bool is_leaf = true;
  std::vector<std::shared_ptr<node>> parents;
  // Reads this->grad and accumulates into parents' grads.
  std::function<void(const node&)> backprop;
};

}  // namespace detail

using detail::node;

// Shared helpers for building interior nodes. Kept in a struct so it can be
// friended by `variable` once instead of per-function.
struct graph_ops {
  static std::shared_ptr<node> raw(const variable& v) { return v.node_; }

  static variable wrap(std::shared_ptr<node> n) {
    return variable(std::move(n));
  }

  static variable make(tensor value, std::vector<variable> parents,
                       std::function<void(const node&)> backprop) {
    auto n = std::make_shared<node>();
    n->value = std::move(value);
    n->grad = tensor(n->value.dims());
    n->is_leaf = false;
    for (const auto& p : parents) {
      VTM_EXPECTS(p.valid());
      n->requires_grad = n->requires_grad || p.requires_grad();
      n->parents.push_back(raw(p));
    }
    if (n->requires_grad) n->backprop = std::move(backprop);
    return wrap(std::move(n));
  }
};

namespace {

node& parent(const node& n, std::size_t i) { return *n.parents[i]; }

}  // namespace

variable variable::constant(tensor value) {
  auto n = std::make_shared<node>();
  n->grad = tensor(value.dims());
  n->value = std::move(value);
  n->requires_grad = false;
  return graph_ops::wrap(std::move(n));
}

variable variable::parameter(tensor value) {
  auto n = std::make_shared<node>();
  n->grad = tensor(value.dims());
  n->value = std::move(value);
  n->requires_grad = true;
  return graph_ops::wrap(std::move(n));
}

const tensor& variable::value() const {
  VTM_EXPECTS(valid());
  return node_->value;
}

const tensor& variable::grad() const {
  VTM_EXPECTS(valid());
  return node_->grad;
}

shape variable::dims() const { return value().dims(); }

bool variable::requires_grad() const {
  VTM_EXPECTS(valid());
  return node_->requires_grad;
}

void variable::set_value(tensor value) {
  VTM_EXPECTS(valid());
  VTM_EXPECTS(node_->is_leaf);
  VTM_EXPECTS(value.dims() == node_->value.dims());
  node_->value = std::move(value);
}

void variable::zero_grad() {
  VTM_EXPECTS(valid());
  node_->grad.fill(0.0);
}

void variable::accumulate_grad(const tensor& delta) {
  VTM_EXPECTS(valid());
  VTM_EXPECTS(delta.dims() == node_->value.dims());
  node_->grad += delta;
}

void backward(const variable& root) {
  VTM_EXPECTS(root.valid());
  VTM_EXPECTS(root.dims() == (shape{1, 1}));

  // Iterative post-order DFS -> topological order (parents before children in
  // `order` reversed form).
  std::vector<node*> order;
  std::unordered_set<const node*> visited;
  struct frame {
    node* n;
    std::size_t next_parent;
  };
  std::vector<frame> stack;
  node* root_node = graph_ops::raw(root).get();
  stack.push_back({root_node, 0});
  visited.insert(root_node);
  while (!stack.empty()) {
    frame& top = stack.back();
    if (top.next_parent < top.n->parents.size()) {
      node* p = top.n->parents[top.next_parent++].get();
      if (visited.insert(p).second) stack.push_back({p, 0});
    } else {
      order.push_back(top.n);
      stack.pop_back();
    }
  }

  // Fresh gradient accumulation for this pass over interior nodes. Leaf
  // (parameter) gradients are preserved so callers control accumulation via
  // zero_grad() / the optimizer.
  for (node* n : order) {
    if (!n->is_leaf) n->grad.fill(0.0);
  }
  root_node->grad.fill(1.0);

  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    node* n = *it;
    if (n->requires_grad && n->backprop) n->backprop(*n);
  }
}

// ---- elementwise binary ops ----------------------------------------------

variable operator+(const variable& a, const variable& b) {
  VTM_EXPECTS(a.dims() == b.dims());
  return graph_ops::make(a.value() + b.value(), {a, b},
                         [](const node& self) {
                           if (parent(self, 0).requires_grad)
                             parent(self, 0).grad += self.grad;
                           if (parent(self, 1).requires_grad)
                             parent(self, 1).grad += self.grad;
                         });
}

variable operator-(const variable& a, const variable& b) {
  VTM_EXPECTS(a.dims() == b.dims());
  return graph_ops::make(a.value() - b.value(), {a, b},
                         [](const node& self) {
                           if (parent(self, 0).requires_grad)
                             parent(self, 0).grad += self.grad;
                           if (parent(self, 1).requires_grad)
                             parent(self, 1).grad += self.grad * -1.0;
                         });
}

variable operator*(const variable& a, const variable& b) {
  VTM_EXPECTS(a.dims() == b.dims());
  return graph_ops::make(
      a.value().hadamard(b.value()), {a, b}, [](const node& self) {
        if (parent(self, 0).requires_grad)
          parent(self, 0).grad += self.grad.hadamard(parent(self, 1).value);
        if (parent(self, 1).requires_grad)
          parent(self, 1).grad += self.grad.hadamard(parent(self, 0).value);
      });
}

variable operator/(const variable& a, const variable& b) {
  VTM_EXPECTS(a.dims() == b.dims());
  tensor out = a.value();
  for (std::size_t i = 0; i < out.size(); ++i) {
    VTM_EXPECTS(b.value().flat()[i] != 0.0);
    out.flat()[i] /= b.value().flat()[i];
  }
  return graph_ops::make(std::move(out), {a, b}, [](const node& self) {
    const tensor& bv = parent(self, 1).value;
    if (parent(self, 0).requires_grad) {
      tensor g = self.grad;
      for (std::size_t i = 0; i < g.size(); ++i) g.flat()[i] /= bv.flat()[i];
      parent(self, 0).grad += g;
    }
    if (parent(self, 1).requires_grad) {
      // d(a/b)/db = -a / b^2 = -value / b
      tensor g = self.grad.hadamard(self.value);
      for (std::size_t i = 0; i < g.size(); ++i) g.flat()[i] /= -bv.flat()[i];
      parent(self, 1).grad += g;
    }
  });
}

// ---- scalar ops -----------------------------------------------------------

variable operator*(const variable& a, double s) {
  return graph_ops::make(a.value() * s, {a}, [s](const node& self) {
    if (parent(self, 0).requires_grad) parent(self, 0).grad += self.grad * s;
  });
}

variable operator*(double s, const variable& a) { return a * s; }

variable operator+(const variable& a, double s) {
  return graph_ops::make(a.value() + s, {a}, [](const node& self) {
    if (parent(self, 0).requires_grad) parent(self, 0).grad += self.grad;
  });
}

variable operator-(const variable& a, double s) { return a + (-s); }

variable operator-(const variable& a) { return a * -1.0; }

// ---- linear algebra --------------------------------------------------------

variable matmul(const variable& a, const variable& b) {
  VTM_EXPECTS(a.dims().cols == b.dims().rows);
  return graph_ops::make(
      a.value().matmul(b.value()), {a, b}, [](const node& self) {
        // dL/dA = dL/dY · Bᵀ ;  dL/dB = Aᵀ · dL/dY
        if (parent(self, 0).requires_grad)
          parent(self, 0).grad +=
              self.grad.matmul(parent(self, 1).value.transposed());
        if (parent(self, 1).requires_grad)
          parent(self, 1).grad +=
              parent(self, 0).value.transposed().matmul(self.grad);
      });
}

variable add_rowvec(const variable& m, const variable& row) {
  VTM_EXPECTS(row.dims().rows == 1);
  VTM_EXPECTS(row.dims().cols == m.dims().cols);
  tensor out = m.value();
  for (std::size_t r = 0; r < out.rows(); ++r)
    for (std::size_t c = 0; c < out.cols(); ++c)
      out(r, c) += row.value()(0, c);
  return graph_ops::make(std::move(out), {m, row}, [](const node& self) {
    if (parent(self, 0).requires_grad) parent(self, 0).grad += self.grad;
    if (parent(self, 1).requires_grad) {
      tensor col_sums({1, self.grad.cols()});
      for (std::size_t r = 0; r < self.grad.rows(); ++r)
        for (std::size_t c = 0; c < self.grad.cols(); ++c)
          col_sums(0, c) += self.grad(r, c);
      parent(self, 1).grad += col_sums;
    }
  });
}

variable tile_rows(const variable& row, std::size_t n) {
  VTM_EXPECTS(row.dims().rows == 1);
  VTM_EXPECTS(n >= 1);
  tensor out({n, row.dims().cols});
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < out.cols(); ++c) out(r, c) = row.value()(0, c);
  return graph_ops::make(std::move(out), {row}, [](const node& self) {
    if (!parent(self, 0).requires_grad) return;
    tensor col_sums({1, self.grad.cols()});
    for (std::size_t r = 0; r < self.grad.rows(); ++r)
      for (std::size_t c = 0; c < self.grad.cols(); ++c)
        col_sums(0, c) += self.grad(r, c);
    parent(self, 0).grad += col_sums;
  });
}

// ---- elementwise nonlinearities --------------------------------------------

variable tanh(const variable& a) {
  tensor out = a.value();
  out.apply([](double x) { return std::tanh(x); });
  return graph_ops::make(std::move(out), {a}, [](const node& self) {
    if (!parent(self, 0).requires_grad) return;
    tensor g = self.grad;
    for (std::size_t i = 0; i < g.size(); ++i) {
      const double y = self.value.flat()[i];
      g.flat()[i] *= 1.0 - y * y;
    }
    parent(self, 0).grad += g;
  });
}

variable relu(const variable& a) {
  tensor out = a.value();
  out.apply([](double x) { return x > 0.0 ? x : 0.0; });
  return graph_ops::make(std::move(out), {a}, [](const node& self) {
    if (!parent(self, 0).requires_grad) return;
    tensor g = self.grad;
    for (std::size_t i = 0; i < g.size(); ++i)
      if (parent(self, 0).value.flat()[i] <= 0.0) g.flat()[i] = 0.0;
    parent(self, 0).grad += g;
  });
}

variable sigmoid(const variable& a) {
  tensor out = a.value();
  out.apply([](double x) { return 1.0 / (1.0 + std::exp(-x)); });
  return graph_ops::make(std::move(out), {a}, [](const node& self) {
    if (!parent(self, 0).requires_grad) return;
    tensor g = self.grad;
    for (std::size_t i = 0; i < g.size(); ++i) {
      const double y = self.value.flat()[i];
      g.flat()[i] *= y * (1.0 - y);
    }
    parent(self, 0).grad += g;
  });
}

variable exp(const variable& a) {
  tensor out = a.value();
  out.apply([](double x) { return std::exp(x); });
  return graph_ops::make(std::move(out), {a}, [](const node& self) {
    if (!parent(self, 0).requires_grad) return;
    parent(self, 0).grad += self.grad.hadamard(self.value);
  });
}

variable log(const variable& a) {
  tensor out = a.value();
  for (double x : out.flat()) VTM_EXPECTS(x > 0.0);
  out.apply([](double x) { return std::log(x); });
  return graph_ops::make(std::move(out), {a}, [](const node& self) {
    if (!parent(self, 0).requires_grad) return;
    tensor g = self.grad;
    for (std::size_t i = 0; i < g.size(); ++i)
      g.flat()[i] /= parent(self, 0).value.flat()[i];
    parent(self, 0).grad += g;
  });
}

variable square(const variable& a) {
  tensor out = a.value();
  out.apply([](double x) { return x * x; });
  return graph_ops::make(std::move(out), {a}, [](const node& self) {
    if (!parent(self, 0).requires_grad) return;
    parent(self, 0).grad +=
        self.grad.hadamard(parent(self, 0).value) * 2.0;
  });
}

variable clamp(const variable& a, double lo, double hi) {
  VTM_EXPECTS(lo <= hi);
  tensor out = a.value();
  out.apply([lo, hi](double x) { return x < lo ? lo : (x > hi ? hi : x); });
  return graph_ops::make(std::move(out), {a}, [lo, hi](const node& self) {
    if (!parent(self, 0).requires_grad) return;
    tensor g = self.grad;
    for (std::size_t i = 0; i < g.size(); ++i) {
      const double x = parent(self, 0).value.flat()[i];
      if (x < lo || x > hi) g.flat()[i] = 0.0;
    }
    parent(self, 0).grad += g;
  });
}

variable minimum(const variable& a, const variable& b) {
  VTM_EXPECTS(a.dims() == b.dims());
  tensor out = a.value();
  for (std::size_t i = 0; i < out.size(); ++i)
    out.flat()[i] = std::min(out.flat()[i], b.value().flat()[i]);
  return graph_ops::make(std::move(out), {a, b}, [](const node& self) {
    const tensor& av = parent(self, 0).value;
    const tensor& bv = parent(self, 1).value;
    for (std::size_t i = 0; i < self.grad.size(); ++i) {
      const bool a_smaller = av.flat()[i] <= bv.flat()[i];
      if (a_smaller && parent(self, 0).requires_grad)
        parent(self, 0).grad.flat()[i] += self.grad.flat()[i];
      if (!a_smaller && parent(self, 1).requires_grad)
        parent(self, 1).grad.flat()[i] += self.grad.flat()[i];
    }
  });
}

// ---- reductions -------------------------------------------------------------

variable sum(const variable& a) {
  return graph_ops::make(tensor::scalar(a.value().sum()), {a},
                         [](const node& self) {
                           if (!parent(self, 0).requires_grad) return;
                           const double g = self.grad.item();
                           tensor grads(parent(self, 0).value.dims(), g);
                           parent(self, 0).grad += grads;
                         });
}

variable mean(const variable& a) {
  const auto n = static_cast<double>(a.value().size());
  VTM_EXPECTS(n > 0);
  return graph_ops::make(tensor::scalar(a.value().sum() / n), {a},
                         [n](const node& self) {
                           if (!parent(self, 0).requires_grad) return;
                           const double g = self.grad.item() / n;
                           tensor grads(parent(self, 0).value.dims(), g);
                           parent(self, 0).grad += grads;
                         });
}

variable sum_cols(const variable& a) {
  tensor out({a.dims().rows, 1});
  for (std::size_t r = 0; r < a.dims().rows; ++r)
    for (std::size_t c = 0; c < a.dims().cols; ++c)
      out(r, 0) += a.value()(r, c);
  return graph_ops::make(std::move(out), {a}, [](const node& self) {
    if (!parent(self, 0).requires_grad) return;
    tensor g(parent(self, 0).value.dims());
    for (std::size_t r = 0; r < g.rows(); ++r)
      for (std::size_t c = 0; c < g.cols(); ++c)
        g(r, c) = self.grad(r, 0);
    parent(self, 0).grad += g;
  });
}

variable stop_gradient(const variable& a) {
  return variable::constant(a.value());
}

}  // namespace vtm::nn
