#include "nn/optim.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace vtm::nn {

optimizer::optimizer(std::vector<variable> params)
    : params_(std::move(params)) {
  for (const auto& p : params_) {
    VTM_EXPECTS(p.valid());
    VTM_EXPECTS(p.requires_grad());
  }
}

void optimizer::zero_grad() {
  for (auto& p : params_) p.zero_grad();
}

sgd::sgd(std::vector<variable> params, double lr, double momentum)
    : optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  VTM_EXPECTS(lr > 0.0);
  VTM_EXPECTS(momentum >= 0.0 && momentum < 1.0);
  velocity_.reserve(params_.size());
  for (const auto& p : params_) velocity_.emplace_back(p.value().dims());
}

void sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    tensor value = params_[i].value();
    const tensor& grad = params_[i].grad();
    for (std::size_t j = 0; j < value.size(); ++j) {
      double& vel = velocity_[i].flat()[j];
      vel = momentum_ * vel + grad.flat()[j];
      value.flat()[j] -= lr_ * vel;
    }
    params_[i].set_value(std::move(value));
  }
  zero_grad();
}

adam::adam(std::vector<variable> params, double lr, double beta1, double beta2,
           double eps)
    : optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  VTM_EXPECTS(lr > 0.0);
  VTM_EXPECTS(beta1 >= 0.0 && beta1 < 1.0);
  VTM_EXPECTS(beta2 >= 0.0 && beta2 < 1.0);
  VTM_EXPECTS(eps > 0.0);
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.value().dims());
    v_.emplace_back(p.value().dims());
  }
}

void adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    tensor value = params_[i].value();
    const tensor& grad = params_[i].grad();
    for (std::size_t j = 0; j < value.size(); ++j) {
      const double g = grad.flat()[j];
      double& m = m_[i].flat()[j];
      double& v = v_[i].flat()[j];
      m = beta1_ * m + (1.0 - beta1_) * g;
      v = beta2_ * v + (1.0 - beta2_) * g * g;
      const double m_hat = m / bc1;
      const double v_hat = v / bc2;
      value.flat()[j] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
    params_[i].set_value(std::move(value));
  }
  zero_grad();
}

double clip_grad_norm(const std::vector<variable>& params, double max_norm) {
  VTM_EXPECTS(max_norm > 0.0);
  double sq = 0.0;
  for (const auto& p : params)
    for (double g : p.grad().flat()) sq += g * g;
  const double norm = std::sqrt(sq);
  if (norm > max_norm && norm > 0.0) {
    const double scale = max_norm / norm;
    for (const auto& p : params) {
      tensor scaled = p.grad() * scale;
      variable mutable_p = p;
      mutable_p.zero_grad();
      mutable_p.accumulate_grad(scaled);
    }
  }
  return norm;
}

}  // namespace vtm::nn
