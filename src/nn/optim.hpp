// First-order optimizers over lists of parameter variables.
//
// Optimizers read each parameter's grad() and update its value in place;
// step() then clears the gradients so the next backward pass starts fresh.
#pragma once

#include <vector>

#include "nn/autograd.hpp"

namespace vtm::nn {

/// Optimizer interface (I.25: abstract base as interface).
class optimizer {
 public:
  virtual ~optimizer() = default;

  /// Apply one update using the parameters' current gradients, then zero them.
  virtual void step() = 0;

  /// Zero all parameter gradients without updating.
  void zero_grad();

  /// The parameters being optimized.
  [[nodiscard]] const std::vector<variable>& parameters() const noexcept {
    return params_;
  }

 protected:
  explicit optimizer(std::vector<variable> params);
  std::vector<variable> params_;
};

/// Plain stochastic gradient descent with optional momentum.
class sgd final : public optimizer {
 public:
  /// Requires lr > 0 and momentum in [0, 1).
  sgd(std::vector<variable> params, double lr, double momentum = 0.0);

  void step() override;

 private:
  double lr_;
  double momentum_;
  std::vector<tensor> velocity_;
};

/// Adam (Kingma & Ba 2015) with bias correction.
class adam final : public optimizer {
 public:
  /// Requires lr > 0, betas in [0,1), eps > 0.
  adam(std::vector<variable> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8);

  void step() override;

  /// Number of steps taken (bias-correction exponent).
  [[nodiscard]] std::size_t steps() const noexcept { return t_; }

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  std::size_t t_ = 0;
  std::vector<tensor> m_;
  std::vector<tensor> v_;
};

/// Scale gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clipping norm. Requires max_norm > 0.
double clip_grad_norm(const std::vector<variable>& params, double max_norm);

}  // namespace vtm::nn
