// Weight initialization schemes.
#pragma once

#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace vtm::nn {

/// Xavier/Glorot uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
/// Suitable default for tanh trunks.
[[nodiscard]] tensor xavier_uniform(shape s, util::rng& gen);

/// Orthogonal initialization (modified Gram–Schmidt on a Gaussian matrix),
/// scaled by `gain`. The PPO literature's default for policy/value heads.
[[nodiscard]] tensor orthogonal(shape s, util::rng& gen, double gain = 1.0);

/// All-zero tensor (bias default).
[[nodiscard]] tensor zeros(shape s);

}  // namespace vtm::nn
