// Radio-engineering unit conversions used across the wireless substrate.
//
// The paper states channel parameters in logarithmic units (dBm / dB); all
// internal computation is done in linear SI units (watts / unitless gains).
//
// Two parallel surfaces: the raw-double helpers (the legacy spelling, kept
// for records/tensors and hot-loop internals that already unwrapped), and
// typed overloads over util/quantity.hpp that make the unit crossing —
// notably the only dbm → watts path — explicit in the type system. The typed
// overloads forward to the raw helpers, so both spellings are bitwise
// identical by construction (tests/property_test.cpp pins this).
#pragma once

#include "util/quantity.hpp"

namespace vtm::util {

/// Convert a decibel ratio to a linear ratio: 10^(db/10).
[[nodiscard]] double db_to_linear(double db) noexcept;

/// Convert a linear ratio to decibels: 10·log10(x). Requires x > 0.
[[nodiscard]] double linear_to_db(double linear);

/// Convert a power level in dBm to watts: 10^((dbm−30)/10).
[[nodiscard]] double dbm_to_watt(double dbm) noexcept;

/// Convert a power level in watts to dBm. Requires watt > 0.
[[nodiscard]] double watt_to_dbm(double watt);

/// Megabytes → bits (1 MB = 8·10^6 bits, decimal convention).
[[nodiscard]] double megabytes_to_bits(double mb) noexcept;

/// Megahertz → hertz.
[[nodiscard]] double mhz_to_hz(double mhz) noexcept;

// --- typed overloads (the only dbm/db ↔ linear crossings) --------------------

/// dBm → watts, the explicit logarithmic → linear power conversion (there is
/// deliberately no arithmetic path between `dbm` and `watts`).
[[nodiscard]] inline watts to_watts(dbm power) noexcept {
  return watts{dbm_to_watt(power.value())};
}

/// Watts → dBm. Requires a positive power.
[[nodiscard]] inline dbm to_dbm(watts power) {
  return dbm{watt_to_dbm(power.value())};
}

/// dB gain → linear (dimensionless) ratio.
[[nodiscard]] inline double to_linear(db gain) noexcept {
  return db_to_linear(gain.value());
}

/// Linear (dimensionless) ratio → dB. Requires a positive ratio.
[[nodiscard]] inline db to_db(double linear) {
  return db{linear_to_db(linear)};
}

/// Data volume → bits (decimal convention, matching `megabytes_to_bits`).
[[nodiscard]] inline double to_bits(megabytes volume) noexcept {
  return megabytes_to_bits(volume.value());
}

/// Bandwidth → hertz.
[[nodiscard]] inline double to_hz(megahertz bandwidth) noexcept {
  return mhz_to_hz(bandwidth.value());
}

}  // namespace vtm::util
