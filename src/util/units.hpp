// Radio-engineering unit conversions used across the wireless substrate.
//
// The paper states channel parameters in logarithmic units (dBm / dB); all
// internal computation is done in linear SI units (watts / unitless gains).
#pragma once

namespace vtm::util {

/// Convert a decibel ratio to a linear ratio: 10^(db/10).
[[nodiscard]] double db_to_linear(double db) noexcept;

/// Convert a linear ratio to decibels: 10·log10(x). Requires x > 0.
[[nodiscard]] double linear_to_db(double linear);

/// Convert a power level in dBm to watts: 10^((dbm−30)/10).
[[nodiscard]] double dbm_to_watt(double dbm) noexcept;

/// Convert a power level in watts to dBm. Requires watt > 0.
[[nodiscard]] double watt_to_dbm(double watt);

/// Megabytes → bits (1 MB = 8·10^6 bits, decimal convention).
[[nodiscard]] double megabytes_to_bits(double mb) noexcept;

/// Megahertz → hertz.
[[nodiscard]] double mhz_to_hz(double mhz) noexcept;

}  // namespace vtm::util
