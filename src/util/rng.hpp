// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library takes an explicit seed so that
// experiments, tests, and benches are reproducible. The generator is
// xoshiro256** (public-domain algorithm by Blackman & Vigna) seeded through
// splitmix64, which gives high-quality streams from small integer seeds.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace vtm::util {

/// splitmix64 step — used for seeding and for cheap stateless hashing.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** generator with convenience distributions.
///
/// Satisfies UniformRandomBitGenerator, so it can also be plugged into
/// <random> distributions when needed.
class rng {
 public:
  using result_type = std::uint64_t;

  /// Construct from a small seed; internal state is expanded via splitmix64.
  explicit rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// UniformRandomBitGenerator interface.
  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return ~std::uint64_t{0};
  }
  result_type operator()() noexcept { return next(); }

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (cached second variate).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation. Requires stddev >= 0.
  double normal(double mean, double stddev);

  /// Bernoulli draw. Requires 0 <= prob <= 1.
  bool bernoulli(double prob);

  /// Exponential with the given rate. Requires rate > 0.
  double exponential(double rate);

  /// Fisher–Yates shuffle of an index vector [0, n).
  [[nodiscard]] std::vector<std::size_t> permutation(std::size_t n);

  /// Derive an independent child generator (for per-component streams).
  [[nodiscard]] rng split() noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace vtm::util
