#include "util/thread_pool.hpp"

#include "util/contracts.hpp"

namespace vtm::util {

thread_pool::thread_pool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

thread_pool::~thread_pool() {
  {
    const mutex_lock lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void thread_pool::run_indices(const std::function<void(std::size_t)>& fn,
                              std::size_t n) {
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) break;
    try {
      fn(i);
    } catch (...) {
      const mutex_lock lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
  }
}

void thread_pool::worker_loop() {
  std::size_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    std::size_t n = 0;
    {
      mutex_lock lock(mutex_);
      while (!stop_ && generation_ == seen_generation) wake_.wait(lock);
      if (stop_) return;
      seen_generation = generation_;
      job = job_;
      n = job_size_;
    }
    run_indices(*job, n);
    {
      const mutex_lock lock(mutex_);
      --active_;
    }
    done_.notify_one();
  }
}

void thread_pool::parallel_for(std::size_t n,
                               const std::function<void(std::size_t)>& fn) {
  VTM_EXPECTS(fn != nullptr);
  if (n == 0) return;
  if (workers_.empty()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  {
    const mutex_lock lock(mutex_);
    VTM_EXPECTS(job_ == nullptr);  // not reentrant
    job_ = &fn;
    job_size_ = n;
    next_.store(0, std::memory_order_relaxed);
    error_ = nullptr;
    active_ = workers_.size();
    ++generation_;
  }
  wake_.notify_all();

  run_indices(fn, n);  // the caller helps drain the loop

  std::exception_ptr error;
  {
    mutex_lock lock(mutex_);
    while (active_ != 0) done_.wait(lock);
    job_ = nullptr;
    job_size_ = 0;
    error = error_;
    error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void thread_pool::run_phased(
    std::size_t lanes, const std::function<void(std::size_t, std::size_t)>& fn,
    const std::function<bool(std::size_t)>& barrier) {
  VTM_EXPECTS(fn != nullptr);
  VTM_EXPECTS(barrier != nullptr);
  for (std::size_t phase = 0;; ++phase) {
    parallel_for(lanes, [&](std::size_t lane) { fn(lane, phase); });
    if (!barrier(phase)) return;
  }
}

}  // namespace vtm::util
