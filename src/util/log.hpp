// Structured leveled logging.
//
// The library never logs by default (CP-friendly: no global mutable state in
// hot paths); components accept an optional logger. The default sink writes
// `level [component] message` lines to a stream.
#pragma once

#include <functional>
#include <iosfwd>
#include <sstream>
#include <string>

namespace vtm::util {

/// Severity levels in increasing order.
enum class log_level { debug, info, warn, error, off };

/// Human-readable name of a level ("debug", "info", ...).
[[nodiscard]] const char* to_string(log_level level) noexcept;

/// Parse a level name produced by `to_string` (exact match). Returns false
/// and leaves `out` untouched on unknown input — the CLI/env hook rejects
/// typos instead of silently logging at the wrong level.
[[nodiscard]] bool parse_log_level(const std::string& name,
                                   log_level& out) noexcept;

/// Lightweight logger handle: a level threshold plus a sink callback.
///
/// Copies share the sink; a default-constructed logger discards everything,
/// so components can hold one unconditionally.
class logger {
 public:
  using sink_fn = std::function<void(log_level, const std::string&)>;

  /// Discarding logger (level off).
  logger() noexcept = default;

  /// Logger with the given threshold and sink.
  logger(log_level threshold, sink_fn sink)
      : threshold_(threshold), sink_(std::move(sink)) {}

  /// Logger writing to an ostream, tagged with a component name. The sink
  /// serializes writes through an internal mutex (shared by every copy of
  /// the returned logger), so shard lanes and pool workers can log
  /// concurrently without interleaving lines; the stream itself must simply
  /// outlive the logger.
  [[nodiscard]] static logger to_stream(std::ostream& out, std::string component,
                                        log_level threshold = log_level::info);

  /// True when a message at `level` would be emitted.
  [[nodiscard]] bool enabled(log_level level) const noexcept {
    return sink_ && level >= threshold_;
  }

  /// Emit a message if the level passes the threshold.
  void log(log_level level, const std::string& message) const {
    if (enabled(level)) sink_(level, message);
  }

  void debug(const std::string& m) const { log(log_level::debug, m); }
  void info(const std::string& m) const { log(log_level::info, m); }
  void warn(const std::string& m) const { log(log_level::warn, m); }
  void error(const std::string& m) const { log(log_level::error, m); }

 private:
  log_level threshold_ = log_level::off;
  sink_fn sink_;
};

}  // namespace vtm::util
