#include "util/trace.hpp"

#include <chrono>
#include <cstdio>
#include <ostream>

#include "util/contracts.hpp"

namespace vtm::util {

namespace {

[[nodiscard]] std::int64_t steady_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Chrome traces use microsecond timestamps; keep sub-µs resolution.
void write_us(std::ostream& out, std::int64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(ns) / 1000.0);
  out << buf;
}

void write_args(std::ostream& out, const trace_lane* lane,
                std::uint32_t first, std::uint32_t count,
                const std::vector<trace_arg>& args) {
  (void)lane;
  out << "\"args\":{";
  for (std::uint32_t a = 0; a < count; ++a) {
    if (a > 0) out << ',';
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", args[first + a].value);
    out << '"' << args[first + a].key << "\":" << buf;
  }
  out << '}';
}

}  // namespace

void trace_lane::push(const char* name, char phase, std::int64_t ts_ns,
                      std::int64_t dur_ns, const trace_arg* args,
                      std::size_t count) {
  event ev;
  ev.name = name;
  ev.phase = phase;
  ev.ts_ns = ts_ns;
  ev.dur_ns = dur_ns;
  ev.arg_first = static_cast<std::uint32_t>(args_.size());
  ev.arg_count = static_cast<std::uint32_t>(count);
  args_.insert(args_.end(), args, args + count);
  events_.push_back(ev);
}

void trace_lane::instant(const char* name,
                         std::initializer_list<trace_arg> args) {
  if (!telemetry_compiled()) return;
  push(name, 'i', session_->now_ns(), 0, args.begin(), args.size());
}

void trace_span::finish() {
  if (lane_ == nullptr) return;
  const std::int64_t end = lane_->session_->now_ns();
  lane_->push(name_, 'X', start_ns_, end - start_ns_, args_, argc_);
  lane_ = nullptr;
}

trace_session::trace_session() : origin_ns_(steady_ns()) {}

void trace_session::ensure_lanes(std::size_t count) {
  while (lanes_.size() < count) {
    lanes_.emplace_back();
    lanes_.back().session_ = this;
    lanes_.back().tid_ = lanes_.size() - 1;
  }
}

void trace_session::set_lane_name(std::size_t i, std::string name) {
  VTM_EXPECTS(i < lanes_.size());
  if (lane_names_.size() <= i) lane_names_.resize(i + 1);
  lane_names_[i] = std::move(name);
}

std::int64_t trace_session::now_ns() const noexcept {
  return steady_ns() - origin_ns_;
}

std::size_t trace_session::event_count() const noexcept {
  std::size_t total = 0;
  for (const auto& lane : lanes_) total += lane.events_.size();
  return total;
}

void trace_session::write_chrome_json(std::ostream& out) const {
  out << "{\"traceEvents\":[\n";
  bool first = true;
  const auto sep = [&] {
    if (!first) out << ",\n";
    first = false;
  };
  sep();
  out << R"({"name":"process_name","ph":"M","pid":0,"tid":0,)"
      << R"("args":{"name":"vtm fleet"}})";
  for (std::size_t i = 0; i < lane_names_.size(); ++i) {
    if (lane_names_[i].empty()) continue;
    sep();
    out << R"({"name":"thread_name","ph":"M","pid":0,"tid":)" << i
        << R"(,"args":{"name":")" << lane_names_[i] << "\"}}";
  }
  for (const auto& lane : lanes_) {
    for (const auto& ev : lane.events_) {
      sep();
      out << "{\"name\":\"" << ev.name << "\",\"ph\":\"" << ev.phase
          << "\",\"pid\":0,\"tid\":" << lane.tid_ << ",\"ts\":";
      write_us(out, ev.ts_ns);
      if (ev.phase == 'X') {
        out << ",\"dur\":";
        write_us(out, ev.dur_ns);
      } else if (ev.phase == 'i') {
        out << ",\"s\":\"t\"";
      }
      out << ',';
      write_args(out, &lane, ev.arg_first, ev.arg_count, lane.args_);
      out << '}';
    }
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace vtm::util
