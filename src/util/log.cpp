#include "util/log.hpp"

#include <memory>
#include <ostream>

#include "util/sync.hpp"

namespace vtm::util {

const char* to_string(log_level level) noexcept {
  switch (level) {
    case log_level::debug:
      return "debug";
    case log_level::info:
      return "info";
    case log_level::warn:
      return "warn";
    case log_level::error:
      return "error";
    case log_level::off:
      return "off";
  }
  return "?";
}

bool parse_log_level(const std::string& name, log_level& out) noexcept {
  for (const log_level level :
       {log_level::debug, log_level::info, log_level::warn, log_level::error,
        log_level::off}) {
    if (name == to_string(level)) {
      out = level;
      return true;
    }
  }
  return false;
}

namespace {

/// Shared state of a stream sink: one mutex serializes all writers that
/// hold a copy of the same logger, so concurrent lanes emit whole lines.
struct stream_sink {
  stream_sink(std::ostream& stream, std::string name)
      : out(stream), component(std::move(name)) {}

  void write(log_level level, const std::string& message) {
    const mutex_lock lock(mu);
    out << to_string(level) << " [" << component << "] " << message << '\n';
  }

  mutex mu;
  std::ostream& out VTM_GUARDED_BY(mu);
  const std::string component;
};

}  // namespace

logger logger::to_stream(std::ostream& out, std::string component,
                         log_level threshold) {
  auto sink = std::make_shared<stream_sink>(out, std::move(component));
  return logger(threshold,
                [sink = std::move(sink)](log_level level,
                                         const std::string& message) {
                  sink->write(level, message);
                });
}

}  // namespace vtm::util
