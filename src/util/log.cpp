#include "util/log.hpp"

#include <ostream>

namespace vtm::util {

const char* to_string(log_level level) noexcept {
  switch (level) {
    case log_level::debug:
      return "debug";
    case log_level::info:
      return "info";
    case log_level::warn:
      return "warn";
    case log_level::error:
      return "error";
    case log_level::off:
      return "off";
  }
  return "?";
}

logger logger::to_stream(std::ostream& out, std::string component,
                         log_level threshold) {
  return logger(threshold,
                [&out, component = std::move(component)](
                    log_level level, const std::string& message) {
                  out << to_string(level) << " [" << component << "] "
                      << message << '\n';
                });
}

}  // namespace vtm::util
