// Clang thread-safety-analysis annotation macros.
//
// These wrap Clang's capability attributes (`-Wthread-safety`) so the
// window/barrier/mailbox protocol and every mutex-protected member can be
// machine-checked at compile time. On any compiler without the attributes
// (GCC, MSVC) every macro expands to nothing, so the annotations are free
// documentation there and a hard gate in the Clang CI job, which builds with
// `-Wthread-safety -Werror=thread-safety`.
//
// Two kinds of capability are annotated in this codebase:
//
//   - `util::mutex` (sync.hpp) — a classic data lock; members it protects
//     carry VTM_GUARDED_BY(mutex_name_).
//   - `util::barrier_phase` (sync.hpp) — a *phase* capability with no
//     runtime state at all: it models "all shard lanes are parked at a
//     window barrier". Functions that may only run between windows (mailbox
//     deliver/pending, cross-shard state application) take a
//     `const barrier_phase&` parameter annotated VTM_REQUIRES(barrier), and
//     only the coordinator's barrier callback ever acquires one (through
//     `util::barrier_scope`), so a mid-phase call is a compile error.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__)
#define VTM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define VTM_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Marks a type as a capability (lock-like or protocol-state-like).
#define VTM_CAPABILITY(x) VTM_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define VTM_SCOPED_CAPABILITY VTM_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the capability.
#define VTM_GUARDED_BY(x) VTM_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by the capability.
#define VTM_PT_GUARDED_BY(x) VTM_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function callable only while holding the capabilities (and keeps them).
#define VTM_REQUIRES(...) \
  VTM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that acquires the capabilities and does not release them.
#define VTM_ACQUIRE(...) \
  VTM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases held capabilities.
#define VTM_RELEASE(...) \
  VTM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that acquires the capability iff it returns `ret`.
#define VTM_TRY_ACQUIRE(ret, ...) \
  VTM_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Function that must NOT be called while holding the capabilities
/// (deadlock prevention: e.g. callbacks re-entering the owning object).
#define VTM_EXCLUDES(...) VTM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion to the analysis that the capability is held here.
#define VTM_ASSERT_CAPABILITY(x) VTM_THREAD_ANNOTATION(assert_capability(x))

/// Function returning a reference to the named capability.
#define VTM_RETURN_CAPABILITY(x) VTM_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disable the analysis for one function. Use only where the
/// synchronization is real but inexpressible (document why at each site).
#define VTM_NO_THREAD_SAFETY_ANALYSIS \
  VTM_THREAD_ANNOTATION(no_thread_safety_analysis)
