#include "util/rng.hpp"

#include <cmath>
#include <numbers>
#include <numeric>

#include "util/contracts.hpp"

namespace vtm::util {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

rng::rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double rng::uniform() noexcept {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double rng::uniform(double lo, double hi) {
  VTM_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  VTM_EXPECTS(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw = next();
  while (draw >= limit) draw = next();
  return lo + static_cast<std::int64_t>(draw % span);
}

double rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double rng::normal(double mean, double stddev) {
  VTM_EXPECTS(stddev >= 0.0);
  return mean + stddev * normal();
}

bool rng::bernoulli(double prob) {
  VTM_EXPECTS(prob >= 0.0 && prob <= 1.0);
  return uniform() < prob;
}

double rng::exponential(double rate) {
  VTM_EXPECTS(rate > 0.0);
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

std::vector<std::size_t> rng::permutation(std::size_t n) {
  std::vector<std::size_t> index(n);
  std::iota(index.begin(), index.end(), std::size_t{0});
  for (std::size_t i = n; i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(index[i - 1], index[j]);
  }
  return index;
}

rng rng::split() noexcept { return rng{next()}; }

}  // namespace vtm::util
