// Compile-time dimensional analysis: zero-overhead strong unit types.
//
// Every physical quantity the paper's model carries — SI kinematics (m, s,
// m/s), spectrum (MHz), data volume (MB, MB/s), radio power in logarithmic
// (dBm/dB) and linear (W) form, arrival intensity (1/s), and the market's
// price-per-MHz — gets its own `quantity<Tag>` wrapper around one double.
// Construction from a raw double is explicit and reading one back requires
// `.value()`, so a dBm-where-watts-expected or meters-where-seconds-expected
// slip is a compile error instead of a silently wrong simulation
// (tests/negative_compile/ proves each rejection class).
//
// The operator surface is a *curated* dimension table, not a general algebra:
// only physically meaningful combinations exist.
//
//   - Same-dimension `+`/`-`/comparison/ratio for linear units
//     (meters − meters → meters, meters / meters → double).
//   - Cross-dimension products and quotients from the tables below
//     (meters / seconds → mps, mps × seconds → meters,
//      megabytes / mb_per_s → seconds, price_per_mhz × megahertz → double).
//   - Logarithmic units follow log arithmetic: dbm + db → dbm (gain applied),
//     dbm − dbm → db (a ratio), db ± db → db. There is *no* dbm + dbm, no
//     scalar scaling of a log unit, and no implicit dbm ↔ watts path —
//     conversion goes through util/units.hpp explicitly.
//
// Zero-overhead contract: each quantity is exactly one double (static_asserts
// below), trivially copyable, and fully constexpr, so wrapping a config field
// or an API parameter changes neither layout nor code generation — the tier-2
// goldens stay bitwise (DESIGN.md §15).
#pragma once

#include <compare>
#include <type_traits>

namespace vtm::util {

// --- dimension tags ----------------------------------------------------------

struct meter_tag {};          ///< Distance along the highway/graph (m).
struct second_tag {};         ///< Simulation time / durations (s).
struct mps_tag {};            ///< Speed (m/s).
struct megahertz_tag {};      ///< Spectrum bandwidth (MHz).
struct megabyte_tag {};       ///< Data volume (MB, decimal).
struct mb_per_s_tag {};       ///< Transfer / dirtying rate (MB/s).
struct per_second_tag {};     ///< Arrival intensity λ (1/s).
struct watt_tag {};           ///< Linear power (W).
struct dbm_tag {};            ///< Absolute power, logarithmic (dBm).
struct db_tag {};             ///< Power ratio / gain, logarithmic (dB).
struct price_per_mhz_tag {};  ///< Market unit price (utility per MHz).

/// Logarithmic units get log arithmetic only: no same-dimension `+`, no
/// scalar scaling (2 × 3 dBm is not 6 dBm), no linear ratio.
template <class Tag>
inline constexpr bool is_linear_unit_v = true;
template <>
inline constexpr bool is_linear_unit_v<dbm_tag> = false;
template <>
inline constexpr bool is_linear_unit_v<db_tag> = false;

// --- the quantity wrapper ----------------------------------------------------

/// One double, tagged with its dimension. Explicit in, `.value()` out.
template <class Tag>
class quantity {
 public:
  using tag_type = Tag;

  quantity() = default;
  constexpr explicit quantity(double v) noexcept : v_(v) {}

  /// The raw magnitude — the *only* way back to double, so every unit
  /// boundary (records, tensors, legacy APIs) is visible at the call site.
  [[nodiscard]] constexpr double value() const noexcept { return v_; }

  /// Same-dimension ordering/equality only; cross-unit comparison is a
  /// compile error (no implicit conversion between tags).
  [[nodiscard]] constexpr auto operator<=>(const quantity&) const = default;

  /// Same-dimension accumulation (linear units only — log units have no
  /// same-dimension sum).
  constexpr quantity& operator+=(quantity rhs) noexcept
    requires is_linear_unit_v<Tag>
  {
    v_ += rhs.v_;
    return *this;
  }
  constexpr quantity& operator-=(quantity rhs) noexcept
    requires is_linear_unit_v<Tag>
  {
    v_ -= rhs.v_;
    return *this;
  }

 private:
  double v_ = 0.0;
};

using meters = quantity<meter_tag>;
using seconds = quantity<second_tag>;
using mps = quantity<mps_tag>;
using megahertz = quantity<megahertz_tag>;
using megabytes = quantity<megabyte_tag>;
using mb_per_s = quantity<mb_per_s_tag>;
using per_second = quantity<per_second_tag>;
using watts = quantity<watt_tag>;
using dbm = quantity<dbm_tag>;
using db = quantity<db_tag>;
using price_per_mhz = quantity<price_per_mhz_tag>;

namespace detail {
/// Build an operator result that is either a quantity or a plain double
/// (dimensionless results decay to double at the point they arise).
template <class R>
[[nodiscard]] constexpr R make_result(double v) noexcept {
  if constexpr (std::is_same_v<R, double>) {
    return v;
  } else {
    return R{v};
  }
}
}  // namespace detail

// --- same-dimension arithmetic (linear units) --------------------------------

template <class Tag>
  requires is_linear_unit_v<Tag>
[[nodiscard]] constexpr quantity<Tag> operator+(quantity<Tag> a,
                                                quantity<Tag> b) noexcept {
  return quantity<Tag>{a.value() + b.value()};
}

template <class Tag>
  requires is_linear_unit_v<Tag>
[[nodiscard]] constexpr quantity<Tag> operator-(quantity<Tag> a,
                                                quantity<Tag> b) noexcept {
  return quantity<Tag>{a.value() - b.value()};
}

template <class Tag>
  requires is_linear_unit_v<Tag>
[[nodiscard]] constexpr quantity<Tag> operator-(quantity<Tag> a) noexcept {
  return quantity<Tag>{-a.value()};
}

/// Dimensionless ratio of two like quantities.
template <class Tag>
  requires is_linear_unit_v<Tag>
[[nodiscard]] constexpr double operator/(quantity<Tag> a,
                                         quantity<Tag> b) noexcept {
  return a.value() / b.value();
}

/// Scalar scaling (linear units only — scaling a log unit is meaningless).
template <class Tag>
  requires is_linear_unit_v<Tag>
[[nodiscard]] constexpr quantity<Tag> operator*(double s,
                                                quantity<Tag> a) noexcept {
  return quantity<Tag>{s * a.value()};
}

template <class Tag>
  requires is_linear_unit_v<Tag>
[[nodiscard]] constexpr quantity<Tag> operator*(quantity<Tag> a,
                                                double s) noexcept {
  return quantity<Tag>{a.value() * s};
}

template <class Tag>
  requires is_linear_unit_v<Tag>
[[nodiscard]] constexpr quantity<Tag> operator/(quantity<Tag> a,
                                                double s) noexcept {
  return quantity<Tag>{a.value() / s};
}

// --- cross-dimension product/quotient tables ---------------------------------

/// `quantity<A> * quantity<B>` exists iff `product_result<A, B>::type` does.
template <class A, class B>
struct product_result {};
template <>
struct product_result<mps_tag, second_tag> { using type = meters; };
template <>
struct product_result<second_tag, mps_tag> { using type = meters; };
template <>
struct product_result<mb_per_s_tag, second_tag> { using type = megabytes; };
template <>
struct product_result<second_tag, mb_per_s_tag> { using type = megabytes; };
/// λ·T — the expected arrival count over a window (dimensionless).
template <>
struct product_result<per_second_tag, second_tag> { using type = double; };
template <>
struct product_result<second_tag, per_second_tag> { using type = double; };
/// p·w — the market's payment term (utility units, dimensionless here).
template <>
struct product_result<price_per_mhz_tag, megahertz_tag> {
  using type = double;
};
template <>
struct product_result<megahertz_tag, price_per_mhz_tag> {
  using type = double;
};

/// `quantity<A> / quantity<B>` (A ≠ B) exists iff
/// `quotient_result<A, B>::type` does.
template <class A, class B>
struct quotient_result {};
template <>
struct quotient_result<meter_tag, second_tag> { using type = mps; };
template <>
struct quotient_result<meter_tag, mps_tag> { using type = seconds; };
template <>
struct quotient_result<megabyte_tag, second_tag> { using type = mb_per_s; };
template <>
struct quotient_result<megabyte_tag, mb_per_s_tag> { using type = seconds; };

template <class A, class B>
[[nodiscard]] constexpr typename product_result<A, B>::type operator*(
    quantity<A> a, quantity<B> b) noexcept {
  using result = typename product_result<A, B>::type;
  return detail::make_result<result>(a.value() * b.value());
}

template <class A, class B>
[[nodiscard]] constexpr typename quotient_result<A, B>::type operator/(
    quantity<A> a, quantity<B> b) noexcept {
  using result = typename quotient_result<A, B>::type;
  return detail::make_result<result>(a.value() / b.value());
}

// --- logarithmic arithmetic --------------------------------------------------

/// Apply a dB gain to an absolute dBm level (multiplication in linear space).
[[nodiscard]] constexpr dbm operator+(dbm p, db g) noexcept {
  return dbm{p.value() + g.value()};
}
[[nodiscard]] constexpr dbm operator+(db g, dbm p) noexcept {
  return dbm{g.value() + p.value()};
}
[[nodiscard]] constexpr dbm operator-(dbm p, db g) noexcept {
  return dbm{p.value() - g.value()};
}
/// The ratio of two absolute levels is a gain (division in linear space).
[[nodiscard]] constexpr db operator-(dbm a, dbm b) noexcept {
  return db{a.value() - b.value()};
}
/// Gains compose additively.
[[nodiscard]] constexpr db operator+(db a, db b) noexcept {
  return db{a.value() + b.value()};
}
[[nodiscard]] constexpr db operator-(db a, db b) noexcept {
  return db{a.value() - b.value()};
}
[[nodiscard]] constexpr db operator-(db a) noexcept { return db{-a.value()}; }

// --- literals ----------------------------------------------------------------

namespace literals {

// NOLINTBEGIN(google-runtime-int) — UDL signatures are fixed by the language.
[[nodiscard]] constexpr meters operator""_m(long double v) noexcept {
  return meters{static_cast<double>(v)};
}
[[nodiscard]] constexpr meters operator""_m(unsigned long long v) noexcept {
  return meters{static_cast<double>(v)};
}
[[nodiscard]] constexpr seconds operator""_s(long double v) noexcept {
  return seconds{static_cast<double>(v)};
}
[[nodiscard]] constexpr seconds operator""_s(unsigned long long v) noexcept {
  return seconds{static_cast<double>(v)};
}
[[nodiscard]] constexpr mps operator""_mps(long double v) noexcept {
  return mps{static_cast<double>(v)};
}
[[nodiscard]] constexpr mps operator""_mps(unsigned long long v) noexcept {
  return mps{static_cast<double>(v)};
}
[[nodiscard]] constexpr megahertz operator""_mhz(long double v) noexcept {
  return megahertz{static_cast<double>(v)};
}
[[nodiscard]] constexpr megahertz operator""_mhz(
    unsigned long long v) noexcept {
  return megahertz{static_cast<double>(v)};
}
[[nodiscard]] constexpr megabytes operator""_mb(long double v) noexcept {
  return megabytes{static_cast<double>(v)};
}
[[nodiscard]] constexpr megabytes operator""_mb(unsigned long long v) noexcept {
  return megabytes{static_cast<double>(v)};
}
[[nodiscard]] constexpr mb_per_s operator""_mb_s(long double v) noexcept {
  return mb_per_s{static_cast<double>(v)};
}
[[nodiscard]] constexpr mb_per_s operator""_mb_s(
    unsigned long long v) noexcept {
  return mb_per_s{static_cast<double>(v)};
}
[[nodiscard]] constexpr per_second operator""_per_s(long double v) noexcept {
  return per_second{static_cast<double>(v)};
}
[[nodiscard]] constexpr per_second operator""_per_s(
    unsigned long long v) noexcept {
  return per_second{static_cast<double>(v)};
}
[[nodiscard]] constexpr watts operator""_w(long double v) noexcept {
  return watts{static_cast<double>(v)};
}
[[nodiscard]] constexpr watts operator""_w(unsigned long long v) noexcept {
  return watts{static_cast<double>(v)};
}
[[nodiscard]] constexpr dbm operator""_dbm(long double v) noexcept {
  return dbm{static_cast<double>(v)};
}
[[nodiscard]] constexpr dbm operator""_dbm(unsigned long long v) noexcept {
  return dbm{static_cast<double>(v)};
}
[[nodiscard]] constexpr db operator""_db(long double v) noexcept {
  return db{static_cast<double>(v)};
}
[[nodiscard]] constexpr db operator""_db(unsigned long long v) noexcept {
  return db{static_cast<double>(v)};
}
[[nodiscard]] constexpr price_per_mhz operator""_per_mhz(
    long double v) noexcept {
  return price_per_mhz{static_cast<double>(v)};
}
[[nodiscard]] constexpr price_per_mhz operator""_per_mhz(
    unsigned long long v) noexcept {
  return price_per_mhz{static_cast<double>(v)};
}
// NOLINTEND(google-runtime-int)

}  // namespace literals

// --- zero-overhead and dimension-table proofs (DESIGN.md §15) ----------------

static_assert(sizeof(quantity<meter_tag>) == sizeof(double),
              "quantity must add no storage over its raw double");
static_assert(alignof(quantity<meter_tag>) == alignof(double));
static_assert(std::is_trivially_copyable_v<meters>);
static_assert(std::is_trivially_copyable_v<dbm>);
static_assert(std::is_standard_layout_v<meters>);
static_assert(!std::is_convertible_v<double, meters>,
              "construction from raw double must stay explicit");
static_assert(!std::is_convertible_v<meters, double>,
              "unwrapping must go through .value()");
static_assert(!std::is_convertible_v<meters, seconds>);

static_assert((meters{6.0} / seconds{2.0}) == mps{3.0});
static_assert((mps{3.0} * seconds{2.0}) == meters{6.0});
static_assert((meters{6.0} / mps{3.0}) == seconds{2.0});
static_assert((megabytes{10.0} / mb_per_s{2.0}) == seconds{5.0});
static_assert((megabytes{10.0} / seconds{5.0}) == mb_per_s{2.0});
static_assert((per_second{5.0} * seconds{60.0}) == 300.0);
static_assert((price_per_mhz{5.0} * megahertz{10.0}) == 50.0);
static_assert((dbm{40.0} + db{-20.0}) == dbm{20.0});
static_assert((dbm{40.0} - dbm{10.0}) == db{30.0});
static_assert(meters{1.0} + meters{2.0} == meters{3.0});
static_assert(meters{6.0} / meters{2.0} == 3.0);
static_assert(2.0 * mps{3.0} == mps{6.0});

}  // namespace vtm::util
