#include "util/units.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace vtm::util {

double db_to_linear(double db) noexcept { return std::pow(10.0, db / 10.0); }

double linear_to_db(double linear) {
  VTM_EXPECTS(linear > 0.0);
  return 10.0 * std::log10(linear);
}

double dbm_to_watt(double dbm) noexcept {
  return std::pow(10.0, (dbm - 30.0) / 10.0);
}

double watt_to_dbm(double watt) {
  VTM_EXPECTS(watt > 0.0);
  return 10.0 * std::log10(watt) + 30.0;
}

double megabytes_to_bits(double mb) noexcept { return mb * 8.0e6; }

double mhz_to_hz(double mhz) noexcept { return mhz * 1.0e6; }

}  // namespace vtm::util
