// Chrome-trace spans and instant events with per-lane append-only buffers.
//
// A `trace_session` owns one `trace_lane` per worker lane (plus one for the
// coordinator); a lane is written by exactly one thread between barriers, so
// recording is a plain vector push — no locks, no atomics, and the buffers
// are read only after the run joins (TSan-clean by construction). Spans are
// RAII (`trace_span` records a Chrome `"X"` complete event at destruction);
// `trace_lane::instant` records `"i"` marker events. `write_chrome_json`
// emits the Chrome `trace_event` array format, loadable in Perfetto /
// chrome://tracing.
//
// Cost model: every recording call starts with a null-lane branch, so an
// uninstrumented run (no sink attached) pays one predictable branch per
// site. Configuring with -DVTM_TELEMETRY=OFF defines VTM_TELEMETRY_DISABLED
// and constant-folds `telemetry_compiled()` to false, compiling every site
// to a no-op outright.
//
// Timestamps come from std::chrono::steady_clock and are therefore exempt
// from the repo's bitwise-determinism policy (DESIGN.md §16): they never
// feed simulation state, metrics, or results — only this export.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace vtm::util {

/// False when the build was configured with -DVTM_TELEMETRY=OFF; recording
/// call sites guard on this so the optimizer deletes them entirely.
[[nodiscard]] constexpr bool telemetry_compiled() noexcept {
#if defined(VTM_TELEMETRY_DISABLED)
  return false;
#else
  return true;
#endif
}

class trace_session;

/// One key/value pair attached to an event. `key` must point at storage
/// outliving the session (string literals at the instrumentation sites).
struct trace_arg {
  const char* key = nullptr;
  double value = 0.0;
};

/// Append-only event buffer owned by one lane (thread) at a time.
class trace_lane {
 public:
  /// Record an instant (`"i"`) marker event.
  void instant(const char* name, std::initializer_list<trace_arg> args = {});

 private:
  friend class trace_session;
  friend class trace_span;

  struct event {
    const char* name = nullptr;  ///< Static-storage literal.
    char phase = 'X';
    std::int64_t ts_ns = 0;
    std::int64_t dur_ns = 0;  ///< 'X' events only.
    std::uint32_t arg_first = 0;
    std::uint32_t arg_count = 0;
  };

  void push(const char* name, char phase, std::int64_t ts_ns,
            std::int64_t dur_ns, const trace_arg* args, std::size_t count);

  trace_session* session_ = nullptr;
  std::size_t tid_ = 0;
  std::vector<event> events_;
  std::vector<trace_arg> args_;  ///< Flattened per-event arg slices.
};

/// Owns the lanes and the clock origin; exports the collected events.
class trace_session {
 public:
  trace_session();
  trace_session(const trace_session&) = delete;
  trace_session& operator=(const trace_session&) = delete;

  /// Grow to at least `count` lanes. Serial-only (call before handing lane
  /// pointers to workers); existing lane references stay valid.
  void ensure_lanes(std::size_t count);

  [[nodiscard]] std::size_t lane_count() const noexcept {
    return lanes_.size();
  }
  /// Lane `i`, or nullptr when it does not exist — callers can hold the
  /// result unconditionally and rely on the recording calls' null checks.
  [[nodiscard]] trace_lane* lane(std::size_t i) noexcept {
    return i < lanes_.size() ? &lanes_[i] : nullptr;
  }

  /// Label lane `i` in the exported trace ("shard 0", "coordinator", ...).
  void set_lane_name(std::size_t i, std::string name);

  /// Nanoseconds since the session was constructed (steady clock).
  [[nodiscard]] std::int64_t now_ns() const noexcept;

  /// Total recorded events across all lanes.
  [[nodiscard]] std::size_t event_count() const noexcept;

  /// Chrome trace_event JSON (`{"traceEvents": [...]}`), with process/
  /// thread metadata so Perfetto shows one labelled track per lane. Call
  /// after the run has joined its workers.
  void write_chrome_json(std::ostream& out) const;

 private:
  std::int64_t origin_ns_ = 0;
  std::deque<trace_lane> lanes_;  ///< deque: stable references on growth.
  std::vector<std::string> lane_names_;
};

/// RAII scoped span: records an `"X"` complete event over its lifetime on
/// the given lane. A null lane makes every member a cheap no-op, so call
/// sites need no telemetry-enabled branch of their own.
class trace_span {
 public:
  trace_span(trace_lane* lane, const char* name) noexcept
      : lane_(telemetry_compiled() ? lane : nullptr), name_(name) {
    if (lane_ != nullptr) start_ns_ = lane_->session_->now_ns();
  }
  ~trace_span() { finish(); }

  trace_span(const trace_span&) = delete;
  trace_span& operator=(const trace_span&) = delete;

  /// Attach a key/value to the event (recorded at destruction). Capacity is
  /// fixed; surplus args are dropped rather than allocated for.
  void arg(const char* key, double value) noexcept {
    if (lane_ != nullptr && argc_ < kMaxArgs) args_[argc_++] = {key, value};
  }

  /// Close the span early (idempotent; the destructor becomes a no-op).
  void finish();

 private:
  static constexpr std::uint32_t kMaxArgs = 8;

  trace_lane* lane_ = nullptr;
  const char* name_ = nullptr;
  std::int64_t start_ns_ = 0;
  trace_arg args_[kMaxArgs];
  std::uint32_t argc_ = 0;
};

}  // namespace vtm::util
