// Streaming and batch statistics used by the RL trainer, the benches, and the
// property tests (e.g. "utility is monotone in cost" via regression slope).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace vtm::util {

/// Numerically-stable streaming mean/variance (Welford's algorithm).
class running_stats {
 public:
  /// Fold one observation into the accumulator.
  void push(double x) noexcept;

  /// Number of observations folded so far.
  [[nodiscard]] std::size_t count() const noexcept { return count_; }

  /// Sample mean; 0 when empty.
  [[nodiscard]] double mean() const noexcept { return mean_; }

  /// Unbiased sample variance; 0 when fewer than two observations.
  [[nodiscard]] double variance() const noexcept;

  /// Square root of variance().
  [[nodiscard]] double stddev() const noexcept;

  /// Smallest observation; +inf when empty.
  [[nodiscard]] double min() const noexcept { return min_; }

  /// Largest observation; -inf when empty.
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Sum of all observations.
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Merge another accumulator into this one (parallel Welford combine).
  void merge(const running_stats& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_;
  double max_;

 public:
  running_stats() noexcept;
};

/// Arithmetic mean of a sequence. Requires non-empty input.
[[nodiscard]] double mean(std::span<const double> xs);

/// Unbiased sample standard deviation. Requires at least two elements.
[[nodiscard]] double stddev(std::span<const double> xs);

/// Linear-interpolated percentile, q in [0, 100]. Requires non-empty input.
[[nodiscard]] double percentile(std::vector<double> xs, double q);

/// Ordinary-least-squares slope of y against x. Requires equal sizes >= 2 and
/// non-constant x. Used by property tests to assert monotone trends.
[[nodiscard]] double ols_slope(std::span<const double> x,
                               std::span<const double> y);

/// Trailing moving average with the given window (window >= 1); output has the
/// same length as the input, with a growing window over the prefix.
[[nodiscard]] std::vector<double> moving_average(std::span<const double> xs,
                                                 std::size_t window);

}  // namespace vtm::util
