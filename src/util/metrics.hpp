// Deterministic metrics: named counters, gauges, and fixed-bucket
// histograms with per-lane write buffers.
//
// The registry is built for the sharded fleet engine's execution model
// (DESIGN.md §10): instruments are registered serially up front, every
// worker lane gets its own `metrics_lane` write buffer (no locks, no atomics
// — a lane buffer is written by exactly one lane between barriers), and the
// coordinator folds the lane deltas into the global totals at the window
// barriers, in lane-index order. Because each lane's delta stream is a
// deterministic function of (seed, config) and the fold order is fixed,
// identical runs produce bitwise-identical metric values regardless of how
// the OS interleaves the worker threads — the property pinned by
// tests/telemetry_test.cpp.
//
// Determinism contract: only record quantities that are themselves
// deterministic (counts, cohort sizes, bandwidth). Wall-clock durations are
// *not* — they belong in trace spans (util/trace.hpp), which are exempt
// from the bitwise policy (DESIGN.md §16).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/sync.hpp"

namespace vtm::util {

class metrics_registry;

/// Dense per-kind instrument index returned at registration.
using metric_id = std::size_t;

/// One lane's private write buffer. Not synchronized by design: exactly one
/// lane writes it between barriers, and the coordinator merges it only while
/// every lane is parked (`metrics_registry::merge`, barrier-gated).
class metrics_lane {
 public:
  /// Bump a counter by `delta`.
  void add(metric_id counter, std::uint64_t delta = 1) noexcept {
    counters_[counter] += delta;
  }
  /// Set a gauge to `value` (last write during a phase wins; across lanes,
  /// the highest-indexed writing lane wins — a fixed, documented rule, so
  /// the merged value is deterministic).
  void set(metric_id gauge, double value) noexcept {
    gauges_[gauge].value = value;
    ++gauges_[gauge].writes;
  }
  /// Record one histogram observation.
  void observe(metric_id histogram, double value) noexcept;

 private:
  friend class metrics_registry;

  struct gauge_cell {
    double value = 0.0;
    std::uint64_t writes = 0;  ///< Sets since the last merge.
  };
  struct histogram_cell {
    std::vector<std::uint64_t> buckets;  ///< One per bound, plus overflow.
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  const metrics_registry* owner_ = nullptr;
  std::vector<std::uint64_t> counters_;
  std::vector<gauge_cell> gauges_;
  std::vector<histogram_cell> histograms_;
};

/// Read-side view of one merged histogram.
struct histogram_snapshot {
  std::string name;
  std::vector<double> bounds;            ///< Ascending upper bounds.
  std::vector<std::uint64_t> buckets;    ///< bounds.size() + 1 (overflow).
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< Meaningful only when count > 0.
  double max = 0.0;
};

/// Instrument registry + merged totals. Lifecycle: register instruments
/// (serial), `bind_lanes` (serial), lanes write through their buffers,
/// `merge` at barriers, read/export after. Reusing one registry across
/// sequential runs accumulates totals; use a fresh registry per run when
/// comparing runs.
class metrics_registry {
 public:
  metrics_registry() = default;
  metrics_registry(const metrics_registry&) = delete;
  metrics_registry& operator=(const metrics_registry&) = delete;

  /// Register (or look up, by name) an instrument. Re-registration returns
  /// the existing id; a histogram re-registered with different bounds is a
  /// contract violation. Serial-only, like `bind_lanes`.
  metric_id counter(std::string name);
  metric_id gauge(std::string name);
  metric_id histogram(std::string name, std::vector<double> bounds);

  /// Size (or re-size) the per-lane buffers to the registered schema and
  /// reset their deltas. Serial-only: call before handing lane references
  /// to workers. Merged totals are preserved.
  void bind_lanes(std::size_t lanes);

  [[nodiscard]] std::size_t lane_count() const noexcept {
    return lanes_.size();
  }
  [[nodiscard]] metrics_lane& lane(std::size_t i) { return lanes_[i]; }

  /// Fold every lane's deltas into the global totals, in lane-index order,
  /// and clear the deltas. Barrier-only: requires the run's barrier
  /// capability (every lane parked), like mailbox delivery.
  void merge(const barrier_phase& barrier) VTM_REQUIRES(barrier);

  [[nodiscard]] std::uint64_t counter_value(metric_id id) const {
    return counters_[id].total;
  }
  [[nodiscard]] double gauge_value(metric_id id) const {
    return gauges_[id].value;
  }
  [[nodiscard]] histogram_snapshot histogram_value(metric_id id) const;

  /// Merged totals as one deterministic JSON object (instruments in
  /// registration order; doubles printed round-trip exact, so two bitwise-
  /// identical registries serialize to identical bytes).
  void write_json(std::ostream& out) const;

 private:
  friend class metrics_lane;

  struct counter_def {
    std::string name;
    std::uint64_t total = 0;
  };
  struct gauge_def {
    std::string name;
    double value = 0.0;
    std::uint64_t writes = 0;
  };
  struct histogram_def {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  std::vector<counter_def> counters_;
  std::vector<gauge_def> gauges_;
  std::vector<histogram_def> histograms_;
  std::vector<metrics_lane> lanes_;
};

}  // namespace vtm::util
