// Minimal CSV emission for bench/experiment outputs.
//
// Each bench binary prints its figure's data series as CSV rows (and an ASCII
// rendering) so plots can be regenerated with any external tool.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace vtm::util {

/// Streams rows of a single CSV table with a fixed header.
///
/// Values are formatted with up to 6 significant digits; strings containing
/// separators or quotes are quoted per RFC 4180.
class csv_writer {
 public:
  /// Bind to an output stream and emit the header row immediately.
  csv_writer(std::ostream& out, std::vector<std::string> header);

  /// Emit one row of doubles. Requires the same arity as the header.
  void row(std::initializer_list<double> values);

  /// Emit one row of preformatted cells. Requires the same arity as the header.
  void row(const std::vector<std::string>& cells);

  /// Number of data rows emitted so far.
  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

  /// Escape one cell per RFC 4180 (exposed for testing).
  [[nodiscard]] static std::string escape(const std::string& cell);

 private:
  std::ostream& out_;
  std::size_t arity_;
  std::size_t rows_ = 0;
};

/// Format a double compactly (up to 6 significant digits, no trailing zeros).
[[nodiscard]] std::string format_number(double value);

}  // namespace vtm::util
