// Contract-checking macros in the spirit of the C++ Core Guidelines (I.6/I.8).
//
// VTM_EXPECTS(cond)  — precondition:  throw vtm::util::contract_error on violation.
// VTM_ENSURES(cond)  — postcondition: throw vtm::util::contract_error on violation.
// VTM_ASSERT(cond)   — internal invariant, same behaviour.
//
// Contracts throw (instead of aborting) so that property tests can assert that
// invalid inputs are rejected, and so that long-running simulations surface the
// failing expression and location in the exception message.
#pragma once

#include <stdexcept>
#include <string>

namespace vtm::util {

/// Exception thrown when a precondition, postcondition, or invariant is violated.
class contract_error : public std::logic_error {
 public:
  contract_error(const char* kind, const char* expr, const char* file, int line)
      : std::logic_error(std::string(kind) + " violated: `" + expr + "` at " +
                         file + ":" + std::to_string(line)) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw contract_error(kind, expr, file, line);
}
}  // namespace detail

}  // namespace vtm::util

#define VTM_EXPECTS(cond)                                                     \
  do {                                                                        \
    if (!(cond))                                                              \
      ::vtm::util::detail::contract_fail("precondition", #cond, __FILE__,     \
                                         __LINE__);                           \
  } while (false)

#define VTM_ENSURES(cond)                                                     \
  do {                                                                        \
    if (!(cond))                                                              \
      ::vtm::util::detail::contract_fail("postcondition", #cond, __FILE__,    \
                                         __LINE__);                           \
  } while (false)

#define VTM_ASSERT(cond)                                                      \
  do {                                                                        \
    if (!(cond))                                                              \
      ::vtm::util::detail::contract_fail("invariant", #cond, __FILE__,        \
                                         __LINE__);                           \
  } while (false)
