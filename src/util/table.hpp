// ASCII rendering of tables and line charts.
//
// Bench binaries print the paper's figures both as CSV (machine-readable) and
// as ASCII charts (eyeball-the-shape-readable in a terminal / CI log).
#pragma once

#include <span>
#include <string>
#include <vector>

namespace vtm::util {

/// Fixed-column ASCII table with a header row and aligned cells.
class ascii_table {
 public:
  /// Create a table with the given column headers (non-empty).
  explicit ascii_table(std::vector<std::string> header);

  /// Append a row of preformatted cells. Requires the header's arity.
  void add_row(std::vector<std::string> cells);

  /// Append a row of doubles formatted via format_number.
  void add_row(std::span<const double> values);

  /// Render with box-drawing separators.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// One named series for an ascii_chart.
struct chart_series {
  std::string name;       ///< Legend label.
  std::vector<double> y;  ///< Sample values; drawn against their index or x.
  char marker = '*';      ///< Glyph used for this series.
};

/// Minimal multi-series ASCII line chart (markers on a grid, shared y-axis).
///
/// Intended to make the *shape* of a figure visible in a terminal:
/// convergence curves, monotone trends, crossovers.
class ascii_chart {
 public:
  /// Create a chart of the given plot-area size (columns x rows >= 8x4).
  ascii_chart(std::size_t width, std::size_t height);

  /// Add a series; all series share the y-axis. Empty series are ignored.
  void add_series(chart_series series);

  /// Optional x-axis values (shared; same length as the longest series).
  void set_x(std::vector<double> x);

  /// Title line above the chart.
  void set_title(std::string title);

  /// Render the chart plus a legend.
  [[nodiscard]] std::string render() const;

 private:
  std::size_t width_;
  std::size_t height_;
  std::string title_;
  std::vector<double> x_;
  std::vector<chart_series> series_;
};

}  // namespace vtm::util
