#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/contracts.hpp"
#include "util/csv.hpp"

namespace vtm::util {

ascii_table::ascii_table(std::vector<std::string> header)
    : header_(std::move(header)) {
  VTM_EXPECTS(!header_.empty());
}

void ascii_table::add_row(std::vector<std::string> cells) {
  VTM_EXPECTS(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void ascii_table::add_row(std::span<const double> values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(format_number(v));
  add_row(std::move(cells));
}

std::string ascii_table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  auto hline = [&] {
    out << '+';
    for (auto w : widths) out << std::string(w + 2, '-') << '+';
    out << '\n';
  };
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ')
          << " |";
    }
    out << '\n';
  };
  hline();
  emit_row(header_);
  hline();
  for (const auto& row : rows_) emit_row(row);
  hline();
  return out.str();
}

ascii_chart::ascii_chart(std::size_t width, std::size_t height)
    : width_(width), height_(height) {
  VTM_EXPECTS(width >= 8 && height >= 4);
}

void ascii_chart::add_series(chart_series series) {
  if (series.y.empty()) return;
  series_.push_back(std::move(series));
}

void ascii_chart::set_x(std::vector<double> x) { x_ = std::move(x); }

void ascii_chart::set_title(std::string title) { title_ = std::move(title); }

std::string ascii_chart::render() const {
  std::ostringstream out;
  if (!title_.empty()) out << title_ << '\n';
  if (series_.empty()) return out.str() + "(no data)\n";

  double ymin = std::numeric_limits<double>::infinity();
  double ymax = -ymin;
  std::size_t max_len = 0;
  for (const auto& s : series_) {
    for (double v : s.y) {
      if (std::isfinite(v)) {
        ymin = std::min(ymin, v);
        ymax = std::max(ymax, v);
      }
    }
    max_len = std::max(max_len, s.y.size());
  }
  if (!std::isfinite(ymin)) return out.str() + "(no finite data)\n";
  if (ymax == ymin) {
    ymax += 1.0;
    ymin -= 1.0;
  }

  std::vector<std::string> grid(height_, std::string(width_, ' '));
  auto to_col = [&](std::size_t i, std::size_t len) {
    if (len <= 1) return std::size_t{0};
    return i * (width_ - 1) / (len - 1);
  };
  auto to_row = [&](double v) {
    const double frac = (v - ymin) / (ymax - ymin);
    const auto r = static_cast<std::size_t>(
        std::lround(frac * static_cast<double>(height_ - 1)));
    return height_ - 1 - std::min(r, height_ - 1);
  };
  for (const auto& s : series_) {
    for (std::size_t i = 0; i < s.y.size(); ++i) {
      if (!std::isfinite(s.y[i])) continue;
      grid[to_row(s.y[i])][to_col(i, s.y.size())] = s.marker;
    }
  }

  const std::string top_label = format_number(ymax);
  const std::string bot_label = format_number(ymin);
  const std::size_t label_w = std::max(top_label.size(), bot_label.size());
  for (std::size_t r = 0; r < height_; ++r) {
    std::string label(label_w, ' ');
    if (r == 0) label = top_label + std::string(label_w - top_label.size(), ' ');
    if (r == height_ - 1)
      label = bot_label + std::string(label_w - bot_label.size(), ' ');
    out << label << " |" << grid[r] << '\n';
  }
  out << std::string(label_w, ' ') << " +" << std::string(width_, '-') << '\n';
  if (!x_.empty()) {
    out << std::string(label_w, ' ') << "  x: " << format_number(x_.front())
        << " .. " << format_number(x_.back()) << '\n';
  }
  for (const auto& s : series_)
    out << "  " << s.marker << " = " << s.name << '\n';
  return out.str();
}

}  // namespace vtm::util
