// Annotated synchronization primitives.
//
// libstdc++'s std::mutex / std::lock_guard carry no thread-safety
// attributes, so Clang's analysis cannot see acquisitions made through
// them. `util::mutex` and `util::mutex_lock` are zero-overhead wrappers
// that restore the attribute surface; `util::condition_variable`
// (std::condition_variable_any) waits directly on a `mutex_lock`.
//
// `barrier_phase` is the codebase's second capability kind: a stateless
// token modelling "every shard lane is parked at a window barrier". It has
// no runtime effect whatsoever — acquiring it emits no instructions — but
// functions annotated VTM_REQUIRES(barrier) on a `const barrier_phase&`
// parameter can only be called from code that holds one, and the only
// acquisition path is `barrier_scope`, constructed inside the coordinator's
// barrier callback (where `thread_pool::run_phased` guarantees all workers
// are idle). Mid-phase calls to barrier-only functions therefore fail to
// compile under `-Wthread-safety -Werror=thread-safety`.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/annotations.hpp"

namespace vtm::util {

/// std::mutex with Clang capability attributes.
class VTM_CAPABILITY("mutex") mutex {
 public:
  mutex() = default;
  mutex(const mutex&) = delete;
  mutex& operator=(const mutex&) = delete;

  void lock() VTM_ACQUIRE() { m_.lock(); }
  void unlock() VTM_RELEASE() { m_.unlock(); }
  [[nodiscard]] bool try_lock() VTM_TRY_ACQUIRE(true) {
    return m_.try_lock();
  }

 private:
  // The wrapped implementation lock itself: this class IS the annotation
  // surface, so the member cannot be guarded by anything.
  // vtm-lint: allow(mutex-guarded-by)
  std::mutex m_;
};

/// Scoped lock over `util::mutex`; also a BasicLockable so a
/// `condition_variable` can wait on it.
class VTM_SCOPED_CAPABILITY mutex_lock {
 public:
  explicit mutex_lock(mutex& m) VTM_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~mutex_lock() VTM_RELEASE() { m_.unlock(); }

  mutex_lock(const mutex_lock&) = delete;
  mutex_lock& operator=(const mutex_lock&) = delete;

  // BasicLockable surface for condition_variable_any. Deliberately invisible
  // to the analysis: a cv wait releases and reacquires atomically, so from
  // the caller's perspective the capability is held before and after —
  // exactly what the enclosing scope already asserts.
  void lock() VTM_NO_THREAD_SAFETY_ANALYSIS { m_.lock(); }
  void unlock() VTM_NO_THREAD_SAFETY_ANALYSIS { m_.unlock(); }

 private:
  mutex& m_;
};

/// Condition variable that waits on a `mutex_lock`.
using condition_variable = std::condition_variable_any;

/// Capability token for "all lanes parked at a window barrier". Stateless
/// and zero-cost: it exists purely so the compiler can check the barrier
/// protocol (see file comment).
class VTM_CAPABILITY("barrier") barrier_phase {
 public:
  barrier_phase() = default;
  barrier_phase(const barrier_phase&) = delete;
  barrier_phase& operator=(const barrier_phase&) = delete;

  /// No-ops at runtime; the attributes are the point.
  void acquire() const VTM_ACQUIRE() {}
  void release() const VTM_RELEASE() {}

  /// Tells the analysis the capability is held from here on. For callback
  /// bodies invoked *synchronously* from a function that already requires
  /// the capability (Clang analyzes a lambda as a standalone function and
  /// cannot see its caller's holdings). Runtime no-op.
  void assert_held() const VTM_ASSERT_CAPABILITY(this) {}
};

/// RAII acquisition of a `barrier_phase` for the duration of a barrier
/// callback. Construct one only where every lane is provably idle.
class VTM_SCOPED_CAPABILITY barrier_scope {
 public:
  explicit barrier_scope(const barrier_phase& phase) VTM_ACQUIRE(phase)
      : phase_(phase) {
    phase_.acquire();
  }
  ~barrier_scope() VTM_RELEASE() { phase_.release(); }

  barrier_scope(const barrier_scope&) = delete;
  barrier_scope& operator=(const barrier_scope&) = delete;

 private:
  const barrier_phase& phase_;
};

}  // namespace vtm::util
