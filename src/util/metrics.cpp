#include "util/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <ostream>
#include <utility>

#include "util/contracts.hpp"

namespace vtm::util {

namespace {

constexpr double inf = std::numeric_limits<double>::infinity();

/// Round-trip-exact double formatting shared by every JSON field, so two
/// registries with bitwise-equal values serialize to identical bytes.
void write_double(std::ostream& out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out << buf;
}

void write_name(std::ostream& out, const std::string& name) {
  // Instrument names are dotted identifiers (no escapes needed); keep the
  // writer trivial and enforce the charset at registration instead.
  out << '"' << name << '"';
}

}  // namespace

void metrics_lane::observe(metric_id histogram, double value) noexcept {
  const auto& bounds = owner_->histograms_[histogram].bounds;
  auto& cell = histograms_[histogram];
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), value);
  ++cell.buckets[static_cast<std::size_t>(it - bounds.begin())];
  ++cell.count;
  cell.sum += value;
  cell.min = std::min(cell.min, value);
  cell.max = std::max(cell.max, value);
}

namespace {

void validate_name(const std::string& name) {
  VTM_EXPECTS(!name.empty());
  for (const char c : name)
    VTM_EXPECTS((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-');
}

}  // namespace

metric_id metrics_registry::counter(std::string name) {
  validate_name(name);
  for (std::size_t i = 0; i < counters_.size(); ++i)
    if (counters_[i].name == name) return i;
  counters_.push_back({std::move(name), 0});
  return counters_.size() - 1;
}

metric_id metrics_registry::gauge(std::string name) {
  validate_name(name);
  for (std::size_t i = 0; i < gauges_.size(); ++i)
    if (gauges_[i].name == name) return i;
  gauges_.push_back({std::move(name), 0.0, 0});
  return gauges_.size() - 1;
}

metric_id metrics_registry::histogram(std::string name,
                                      std::vector<double> bounds) {
  validate_name(name);
  VTM_EXPECTS(std::is_sorted(bounds.begin(), bounds.end()));
  for (std::size_t i = 0; i < histograms_.size(); ++i)
    if (histograms_[i].name == name) {
      VTM_EXPECTS(histograms_[i].bounds == bounds);
      return i;
    }
  histogram_def def;
  def.name = std::move(name);
  def.bounds = std::move(bounds);
  def.buckets.assign(def.bounds.size() + 1, 0);
  def.min = inf;
  def.max = -inf;
  histograms_.push_back(std::move(def));
  return histograms_.size() - 1;
}

void metrics_registry::bind_lanes(std::size_t lanes) {
  lanes_.assign(lanes, metrics_lane{});
  for (auto& lane : lanes_) {
    lane.owner_ = this;
    lane.counters_.assign(counters_.size(), 0);
    lane.gauges_.assign(gauges_.size(), {});
    lane.histograms_.assign(histograms_.size(), {});
    for (std::size_t h = 0; h < histograms_.size(); ++h) {
      lane.histograms_[h].buckets.assign(histograms_[h].bounds.size() + 1, 0);
      lane.histograms_[h].min = inf;
      lane.histograms_[h].max = -inf;
    }
  }
}

void metrics_registry::merge(const barrier_phase& barrier) {
  barrier.assert_held();
  for (auto& lane : lanes_) {  // lane-index order: the deterministic fold
    for (std::size_t c = 0; c < counters_.size(); ++c) {
      counters_[c].total += lane.counters_[c];
      lane.counters_[c] = 0;
    }
    for (std::size_t g = 0; g < gauges_.size(); ++g) {
      auto& cell = lane.gauges_[g];
      if (cell.writes > 0) {
        gauges_[g].value = cell.value;
        gauges_[g].writes += cell.writes;
        cell.writes = 0;
      }
    }
    for (std::size_t h = 0; h < histograms_.size(); ++h) {
      auto& cell = lane.histograms_[h];
      if (cell.count == 0) continue;
      auto& def = histograms_[h];
      for (std::size_t b = 0; b < def.buckets.size(); ++b) {
        def.buckets[b] += cell.buckets[b];
        cell.buckets[b] = 0;
      }
      def.count += cell.count;
      def.sum += cell.sum;  // lane-order fold keeps the FP sum reproducible
      def.min = std::min(def.min, cell.min);
      def.max = std::max(def.max, cell.max);
      cell.count = 0;
      cell.sum = 0.0;
      cell.min = inf;
      cell.max = -inf;
    }
  }
}

histogram_snapshot metrics_registry::histogram_value(metric_id id) const {
  const auto& def = histograms_[id];
  histogram_snapshot snap;
  snap.name = def.name;
  snap.bounds = def.bounds;
  snap.buckets = def.buckets;
  snap.count = def.count;
  snap.sum = def.sum;
  snap.min = def.count > 0 ? def.min : 0.0;
  snap.max = def.count > 0 ? def.max : 0.0;
  return snap;
}

void metrics_registry::write_json(std::ostream& out) const {
  out << "{\n  \"counters\": {";
  for (std::size_t c = 0; c < counters_.size(); ++c) {
    out << (c == 0 ? "\n    " : ",\n    ");
    write_name(out, counters_[c].name);
    out << ": " << counters_[c].total;
  }
  out << "\n  },\n  \"gauges\": {";
  for (std::size_t g = 0; g < gauges_.size(); ++g) {
    out << (g == 0 ? "\n    " : ",\n    ");
    write_name(out, gauges_[g].name);
    out << ": {\"value\": ";
    write_double(out, gauges_[g].value);
    out << ", \"writes\": " << gauges_[g].writes << '}';
  }
  out << "\n  },\n  \"histograms\": {";
  for (std::size_t h = 0; h < histograms_.size(); ++h) {
    const auto& def = histograms_[h];
    out << (h == 0 ? "\n    " : ",\n    ");
    write_name(out, def.name);
    out << ": {\"bounds\": [";
    for (std::size_t b = 0; b < def.bounds.size(); ++b) {
      if (b > 0) out << ", ";
      write_double(out, def.bounds[b]);
    }
    out << "], \"buckets\": [";
    for (std::size_t b = 0; b < def.buckets.size(); ++b) {
      if (b > 0) out << ", ";
      out << def.buckets[b];
    }
    out << "], \"count\": " << def.count << ", \"sum\": ";
    write_double(out, def.sum);
    out << ", \"min\": ";
    write_double(out, def.count > 0 ? def.min : 0.0);
    out << ", \"max\": ";
    write_double(out, def.count > 0 ? def.max : 0.0);
    out << '}';
  }
  out << "\n  }\n}\n";
}

}  // namespace vtm::util
