// Fixed-size worker pool for data-parallel loops.
//
// `parallel_for(n, fn)` runs fn(0..n-1) across the workers plus the calling
// thread and blocks until every index has finished. Indices are handed out
// through an atomic counter, so the partitioning is load-balanced; the work
// function must make each index independent (the rollout engine steps one
// environment per index, each with its own RNG). A pool of size zero has no
// workers and parallel_for degenerates to a plain serial loop, which keeps
// single-threaded call sites allocation- and synchronization-free.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/sync.hpp"

namespace vtm::util {

/// Persistent pool of worker threads for index-parallel loops.
class thread_pool {
 public:
  /// Spawn `threads` workers; 0 means "serial" (no threads, no locking).
  explicit thread_pool(std::size_t threads);

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  /// Joins all workers.
  ~thread_pool();

  /// Number of worker threads (0 for a serial pool).
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Invoke fn(i) for every i in [0, n); blocks until all calls return.
  /// The calling thread participates. If any invocation throws, the first
  /// exception is rethrown here after the loop drains. Not reentrant.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Barrier/phase execution for windowed simulations: run one *phase* —
  /// fn(lane, phase) for every lane in [0, lanes), in parallel — then run
  /// `barrier(phase)` serially on the calling thread once every lane has
  /// finished; repeat with phase + 1 while the barrier returns true. No lane
  /// ever runs phase k + 1 before every lane has completed phase k, and the
  /// barrier callback runs with all workers idle, so it may freely touch
  /// state the lanes share (exchange mailboxes, pick the next time window).
  /// Exceptions from any lane abort the loop and rethrow after the phase
  /// drains. Not reentrant.
  void run_phased(std::size_t lanes,
                  const std::function<void(std::size_t, std::size_t)>& fn,
                  const std::function<bool(std::size_t)>& barrier);

 private:
  void worker_loop() VTM_EXCLUDES(mutex_);
  /// Drain indices of the current job. Takes the job by argument (snapshotted
  /// under `mutex_` by the caller) so no guarded member is read mid-loop.
  void run_indices(const std::function<void(std::size_t)>& fn, std::size_t n)
      VTM_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;

  mutex mutex_;
  condition_variable wake_;
  condition_variable done_;
  const std::function<void(std::size_t)>* job_ VTM_GUARDED_BY(mutex_) =
      nullptr;
  std::size_t job_size_ VTM_GUARDED_BY(mutex_) = 0;
  /// Bumped per parallel_for call.
  std::size_t generation_ VTM_GUARDED_BY(mutex_) = 0;
  /// Workers still draining the current job.
  std::size_t active_ VTM_GUARDED_BY(mutex_) = 0;
  std::atomic<std::size_t> next_{0};
  std::exception_ptr error_ VTM_GUARDED_BY(mutex_);
  bool stop_ VTM_GUARDED_BY(mutex_) = false;
};

}  // namespace vtm::util
