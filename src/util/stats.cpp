#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/contracts.hpp"

namespace vtm::util {

running_stats::running_stats() noexcept
    : min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

void running_stats::push(double x) noexcept {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double running_stats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double running_stats::stddev() const noexcept { return std::sqrt(variance()); }

void running_stats::merge(const running_stats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double mean(std::span<const double> xs) {
  VTM_EXPECTS(!xs.empty());
  running_stats acc;
  for (double x : xs) acc.push(x);
  return acc.mean();
}

double stddev(std::span<const double> xs) {
  VTM_EXPECTS(xs.size() >= 2);
  running_stats acc;
  for (double x : xs) acc.push(x);
  return acc.stddev();
}

double percentile(std::vector<double> xs, double q) {
  VTM_EXPECTS(!xs.empty());
  VTM_EXPECTS(q >= 0.0 && q <= 100.0);
  std::sort(xs.begin(), xs.end());
  const double rank = q / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

double ols_slope(std::span<const double> x, std::span<const double> y) {
  VTM_EXPECTS(x.size() == y.size());
  VTM_EXPECTS(x.size() >= 2);
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0;
  double sxx = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
  }
  VTM_EXPECTS(sxx > 0.0);
  return sxy / sxx;
}

std::vector<double> moving_average(std::span<const double> xs,
                                   std::size_t window) {
  VTM_EXPECTS(window >= 1);
  std::vector<double> out;
  out.reserve(xs.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    acc += xs[i];
    if (i >= window) acc -= xs[i - window];
    const auto effective = std::min<std::size_t>(i + 1, window);
    out.push_back(acc / static_cast<double>(effective));
  }
  return out;
}

}  // namespace vtm::util
