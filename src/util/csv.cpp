#include "util/csv.hpp"

#include <cmath>
#include <cstdio>

#include "util/contracts.hpp"

namespace vtm::util {

std::string format_number(double value) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return buf;
}

csv_writer::csv_writer(std::ostream& out, std::vector<std::string> header)
    : out_(out), arity_(header.size()) {
  VTM_EXPECTS(!header.empty());
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(header[i]);
  }
  out_ << '\n';
}

void csv_writer::row(std::initializer_list<double> values) {
  VTM_EXPECTS(values.size() == arity_);
  bool first = true;
  for (double v : values) {
    if (!first) out_ << ',';
    first = false;
    out_ << format_number(v);
  }
  out_ << '\n';
  ++rows_;
}

void csv_writer::row(const std::vector<std::string>& cells) {
  VTM_EXPECTS(cells.size() == arity_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  ++rows_;
}

std::string csv_writer::escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace vtm::util
